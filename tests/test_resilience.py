"""Resilience layer: failure taxonomy, fallback chain, fault injection."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.fem.assembly import assemble_stiffness
from repro.fem.bc import all_dofs, apply_dirichlet, component_dofs, surface_load
from repro.fem.generators import simple_block_model
from repro.fem.nonlinear import solve_nonlinear_contact
from repro.parallel import DistributedSystem, parallel_cg, partition_nodes_rcb
from repro.precond import DiagonalScaling, bic, sb_bic0
from repro.precond.base import Preconditioner
from repro.resilience import (
    FailureReason,
    FallbackStage,
    FaultSpec,
    FaultyComm,
    ResilientSolver,
    SolveReport,
    default_ladder,
)
from repro.solvers.cg import cg_solve

from .conftest import random_spd_csr


# ----------------------------------------------------------------------
# failure taxonomy on cg_solve
# ----------------------------------------------------------------------


class TestFailureTaxonomy:
    def test_converged_solve_reports_converged_reason(self, block_problem_small):
        p = block_problem_small
        res = cg_solve(p.a, p.b, bic(p.a, fill_level=0))
        assert res.converged
        assert res.reason is FailureReason.CONVERGED
        assert res.reason is FailureReason.SUCCESS  # alias
        assert not res.reason.is_failure
        assert "None" not in repr(res)

    def test_breakdown_reason_and_repr(self):
        a = sp.diags([1.0, -1.0, 2.0]).tocsr()
        report = SolveReport()
        res = cg_solve(a, np.ones(3), max_iter=50, report=report)
        assert res.reason is FailureReason.BREAKDOWN_INDEFINITE
        assert "BREAKDOWN_INDEFINITE" in repr(res)
        assert report.counts_by_reason() == {FailureReason.BREAKDOWN_INDEFINITE: 1}

    def test_max_iter_reason(self, block_problem_small):
        p = block_problem_small
        report = SolveReport()
        res = cg_solve(p.a, p.b, max_iter=2, report=report)
        assert not res.converged
        assert res.reason is FailureReason.MAX_ITER
        assert report.detections()[0].reason is FailureReason.MAX_ITER

    def test_stagnation_detected(self):
        """On an extremely ill-conditioned diagonal, demanding a 50%
        residual drop every 5 iterations must trip STAGNATION."""
        d = np.logspace(0, 13, 200)
        a = sp.diags(d).tocsr()
        rng = np.random.default_rng(0)
        b = rng.normal(size=200)
        res = cg_solve(
            a, b, eps=1e-15, max_iter=5000, stagnation_window=5, stagnation_rtol=0.5
        )
        assert not res.converged
        assert res.reason is FailureReason.STAGNATION
        assert res.iterations < 5000

    def test_time_budget_exhaustion(self, block_problem_small):
        p = block_problem_small
        res = cg_solve(p.a, p.b, eps=1e-30, time_budget=0.0)
        assert not res.converged
        assert res.reason is FailureReason.TIME_BUDGET


class TestFailFastValidation:
    def test_nan_rhs_rejected(self):
        with pytest.raises(ValueError, match="non-finite"):
            cg_solve(sp.eye(3).tocsr(), np.array([np.nan, 1.0, 1.0]))

    def test_inf_x0_rejected(self):
        with pytest.raises(ValueError, match="x0"):
            cg_solve(sp.eye(3).tocsr(), np.ones(3), x0=np.array([0.0, np.inf, 0.0]))

    def test_parallel_cg_rejects_nan_rhs(self, block_problem_small):
        p = block_problem_small
        part = partition_nodes_rcb(p.mesh.coords, 3)
        b_bad = p.b.copy()
        b_bad[0] = np.nan
        system = DistributedSystem.from_global(
            p.a, b_bad, part, lambda sub, nodes: bic(sub, fill_level=0)
        )
        with pytest.raises(ValueError, match="non-finite"):
            parallel_cg(system)


# ----------------------------------------------------------------------
# fallback chain
# ----------------------------------------------------------------------


class _PoisonAfter(Preconditioner):
    """Behaves like an inner preconditioner for *healthy_applies* calls,
    then returns NaN — a mid-solve breakdown on demand."""

    name = "poison"

    def __init__(self, inner: Preconditioner, healthy_applies: int) -> None:
        self.inner = inner
        self.left = healthy_applies

    def apply(self, r, out=None):
        if self.left <= 0:
            return np.full_like(np.asarray(r, dtype=float), np.nan)
        self.left -= 1
        return self.inner.apply(r)


class TestResilientSolver:
    def test_healthy_chain_identical_to_direct_solve(self):
        """Property: on a healthy system the chain never escalates and the
        iterates are identical to the direct solve."""
        for seed in (0, 1, 2):
            rng = np.random.default_rng(seed)
            a = random_spd_csr(30, 0.2, rng)
            b = rng.normal(size=30)
            ladder = [
                FallbackStage("BIC(0)", lambda a=a: bic(a, fill_level=0)),
                FallbackStage("Diagonal", lambda a=a: DiagonalScaling(a)),
            ]
            res = ResilientSolver(a, ladder).solve(b)
            direct = cg_solve(a, b, bic(a, fill_level=0))
            assert res.converged
            assert res.iterations == direct.iterations
            assert np.array_equal(res.x, direct.x)
            assert not res.report.detections()  # no failure, no escalation

    def test_setup_exception_escalates(self, block_problem_small):
        p = block_problem_small

        def explode():
            raise np.linalg.LinAlgError("synthetic setup failure")

        ladder = [
            FallbackStage("broken", explode),
            FallbackStage("BIC(0)", lambda: bic(p.a, fill_level=0)),
        ]
        solver = ResilientSolver(p.a, ladder)
        res = solver.solve(p.b)
        assert res.converged
        assert res.relative_residual <= 1e-8
        reasons = [e.reason for e in solver.report.detections()]
        assert FailureReason.SETUP_PIVOT_FAILURE in reasons
        assert solver.report.recoveries()

    def test_singularized_selective_block_recovers(self, block_problem_small):
        """Acceptance: a deliberately singularized selective block makes
        SB-BIC(0) setup fail (nudged pivots); the chain falls back and
        still converges to 1e-8, with the full trail in the report."""
        p = block_problem_small
        # corrupt the preconditioner's input: zero out the rows/columns of
        # the first contact group -> its selective diagonal block is
        # exactly singular at factorization time
        bad = p.a.tolil()
        g_dofs = (p.groups[0][:, None] * 3 + np.arange(3)).reshape(-1)
        bad[g_dofs, :] = 0.0
        bad[:, g_dofs] = 0.0
        bad = bad.tocsr()
        ladder = [
            FallbackStage(
                "SB-BIC(0)", lambda: sb_bic0(bad, p.groups, n_nodes=p.mesh.n_nodes)
            ),
            FallbackStage("BIC(0)", lambda: bic(p.a, fill_level=0)),
            FallbackStage("Diagonal", lambda: DiagonalScaling(p.a)),
        ]
        solver = ResilientSolver(p.a, ladder)
        res = solver.solve(p.b)
        assert res.converged
        assert res.relative_residual <= 1e-8
        trail = solver.report
        det = [e for e in trail.detections() if e.reason is FailureReason.SETUP_PIVOT_FAILURE]
        assert det and det[0].stage == "SB-BIC(0)"
        assert any(e.kind == "escalate" for e in trail.events)
        assert trail.recoveries()
        assert res.report is trail

    def test_mid_solve_breakdown_resumes_from_best_iterate(self, block_problem_small):
        p = block_problem_small
        healthy = bic(p.a, fill_level=0)
        ladder = [
            FallbackStage("flaky", lambda: _PoisonAfter(bic(p.a, fill_level=0), 8)),
            FallbackStage("BIC(0)", lambda: healthy),
        ]
        solver = ResilientSolver(p.a, ladder)
        res = solver.solve(p.b)
        assert res.converged
        assert res.relative_residual <= 1e-8
        reasons = [e.reason for e in solver.report.detections()]
        assert FailureReason.NAN_DETECTED in reasons
        # the second stage warm-restarted from the flaky stage's progress
        infos = [e for e in solver.report.events if e.kind == "info"]
        assert any("warm restart" in e.detail for e in infos)
        # warm restart keeps progress: no more iterations than a cold solve
        cold = cg_solve(p.a, p.b, bic(p.a, fill_level=0))
        second_stage_iters = res.iterations
        assert second_stage_iters <= cold.iterations

    def test_mutating_failed_rung_result_does_not_corrupt_warm_restart(
        self, block_problem_small, monkeypatch
    ):
        """Regression: the warm-restart iterate used to alias the failed
        rung's ``res.x`` — the same array handed out on the returned
        CGResult — so any caller mutating a failed rung's result (a
        history recorder, a diagnostics dump) silently corrupted the
        next rung's ``x0``.  It must be copied on capture."""
        import repro.resilience.resilient as rmod

        p = block_problem_small
        real_cg = rmod.cg_solve
        state = {"prev": None, "x0_seen": []}

        def hostile_cg(a, b, m=None, **kw):
            # a consumer of the previous rung's result clobbers it
            # between rungs — exactly what a caller holding the returned
            # CGResult may legally do
            if state["prev"] is not None:
                state["prev"].x[:] = 999.0
            x0 = kw.get("x0")
            state["x0_seen"].append(None if x0 is None else np.asarray(x0).copy())
            res = real_cg(a, b, m, **kw)
            state["prev"] = res
            return res

        monkeypatch.setattr(rmod, "cg_solve", hostile_cg)
        ladder = [
            FallbackStage("flaky", lambda: _PoisonAfter(bic(p.a, fill_level=0), 8)),
            FallbackStage("BIC(0)", lambda: bic(p.a, fill_level=0)),
        ]
        res = ResilientSolver(p.a, ladder).solve(p.b)
        assert res.converged
        assert len(state["x0_seen"]) == 2
        x0_second = state["x0_seen"][1]
        assert x0_second is not None  # warm restart did happen
        assert not np.any(x0_second == 999.0), (
            "second rung's x0 aliases the failed rung's result array — "
            "the warm-restart iterate must be copied on capture"
        )

    def test_on_stage_result_callback_owns_the_result(self, block_problem_small):
        """The per-rung outcome hook hands the callback the CGResult to
        keep; mutating it (even zeroing ``x``) must not disturb the
        chain's warm restart or the final answer."""
        p = block_problem_small
        seen = []

        def recorder(stage_name, res):
            seen.append((stage_name, res.converged, res.iterations))
            if not res.converged:
                res.x[:] = np.nan  # the callback owns this object

        ladder = [
            FallbackStage("flaky", lambda: _PoisonAfter(bic(p.a, fill_level=0), 8)),
            FallbackStage("BIC(0)", lambda: bic(p.a, fill_level=0)),
        ]
        res = ResilientSolver(p.a, ladder, on_stage_result=recorder).solve(p.b)
        assert res.converged
        assert np.isfinite(res.x).all()
        assert [s for s, _, _ in seen] == ["flaky", "BIC(0)"]
        assert [c for _, c, _ in seen] == [False, True]

    def test_all_stages_failing_reports_reason(self):
        def explode():
            raise np.linalg.LinAlgError("nope")

        a = sp.eye(6).tocsr()
        solver = ResilientSolver(a, [FallbackStage("s0", explode)])
        res = solver.solve(np.ones(6))
        assert not res.converged
        assert res.reason is FailureReason.SETUP_PIVOT_FAILURE

    def test_default_ladder_shape(self, block_problem_small):
        p = block_problem_small
        ladder = default_ladder(p.a, p.groups)
        names = [s.name for s in ladder]
        assert names[0] == "SB-BIC(0)"
        assert names[1] == "BIC(0)"
        assert names[-1] == "Diagonal"
        assert any("shift" in n for n in names)
        # every rung builds and the strongest rung solves the system
        res = ResilientSolver(p.a, ladder).solve(p.b)
        assert res.converged and res.relative_residual <= 1e-8

    def test_default_ladder_scalar_fallback_for_nonblock_matrix(self):
        rng = np.random.default_rng(3)
        a = random_spd_csr(10, 0.3, rng)  # 10 not divisible by 3
        names = [s.name for s in default_ladder(a)]
        assert any("IC(0)" in n for n in names)
        res = ResilientSolver(a, default_ladder(a)).solve(rng.normal(size=10))
        assert res.converged

    def test_shared_bic_cache_refactors_back_across_repeated_solves(
        self, block_problem_small
    ):
        """The default ladder's BIC-family rungs share one cached
        factorization, refactored in place per rung.  After a solve that
        escalated to a shifted rung, a *second* solve with the same
        ladder list must refactor the cache back to shift 0 for the
        plain rung — not reuse the stale shifted pivots."""
        p = block_problem_small
        ladder = default_ladder(p.a)  # no groups: plain BIC(0) first
        plain = next(s for s in ladder if s.name == "BIC(0)")
        shifted = next(s for s in ladder if "shift" in s.name)

        # first solve escalates through every rung (iteration cap no rung
        # can meet), leaving the shared cache at the largest shift
        first = ResilientSolver(p.a, ladder, max_iter=2).solve(p.b)
        assert not first.converged

        m_shifted = shifted.build()
        assert m_shifted._shift > 0.0  # cache really is stale-shifted
        m_plain = plain.build()
        assert m_plain is m_shifted  # one shared factorization...
        assert m_plain._shift == 0.0  # ...refactored back, not reused stale

        # second solve, same ladder list: the plain rung must behave
        # exactly like a fresh unshifted factorization
        second = ResilientSolver(p.a, ladder).solve(p.b)
        fresh = cg_solve(p.a, p.b, bic(p.a, fill_level=0))
        assert second.converged
        assert second.iterations == fresh.iterations
        assert np.array_equal(second.x, fresh.x)

    def test_chain_time_budget(self, block_problem_small):
        p = block_problem_small
        solver = ResilientSolver(p.a, default_ladder(p.a, p.groups), time_budget=0.0)
        res = solver.solve(p.b)
        assert not res.converged
        assert res.reason is FailureReason.TIME_BUDGET


# ----------------------------------------------------------------------
# communication fault injection + detection
# ----------------------------------------------------------------------


def _faulty_system(p, faults, seed=7, ndomains=3):
    part = partition_nodes_rcb(p.mesh.coords, ndomains)
    system = DistributedSystem.from_global(
        p.a, p.b, part, lambda sub, nodes: bic(sub, fill_level=0)
    )
    system.comm = FaultyComm(system.domains, faults, seed=seed)
    return system


class TestCommFaultInjection:
    @pytest.mark.parametrize("kind", ["drop", "nan", "bitflip"])
    def test_fault_detected_within_one_iteration(self, block_problem_small, kind):
        p = block_problem_small
        report = SolveReport()
        system = _faulty_system(p, [FaultSpec(exchange=2, kind=kind)])
        res = parallel_cg(system, report=report)
        assert not res.converged
        assert res.reason is FailureReason.COMM_FAULT
        assert len(system.comm.injected) == 1
        # exchange k happens during iteration k; detection is immediate —
        # in the same iteration the fault actually landed ("drop" faults
        # whose payload matches the stale ghost are deferred by the
        # harness until they corrupt real state)
        det = [e for e in report.detections() if e.reason is FailureReason.COMM_FAULT]
        assert len(det) == 1
        assert det[0].iteration == system.comm.injected[0]["exchange"]
        # the returned iterate is the last good one, never poisoned
        assert np.isfinite(res.x).all()

    def test_nan_payload_never_silently_wrong(self, block_problem_small):
        """Acceptance: a seeded NaN halo fault is reported as COMM_FAULT,
        not returned as a converged-looking garbage answer."""
        p = block_problem_small
        system = _faulty_system(p, [FaultSpec(exchange=0, kind="nan")])
        res = parallel_cg(system)
        assert not res.converged
        assert res.reason is FailureReason.COMM_FAULT
        assert res.iterations == 0  # caught on the very first exchange

    def test_no_faults_matches_clean_run(self, block_problem_small):
        p = block_problem_small
        clean = parallel_cg(
            DistributedSystem.from_global(
                p.a,
                p.b,
                partition_nodes_rcb(p.mesh.coords, 3),
                lambda sub, nodes: bic(sub, fill_level=0),
            )
        )
        faulty_but_idle = parallel_cg(_faulty_system(p, []))
        assert faulty_but_idle.converged
        assert np.array_equal(clean.x, faulty_but_idle.x)

    def test_seeded_rate_mode_is_deterministic(self, block_problem_small):
        p = block_problem_small
        runs = []
        for _ in range(2):
            part = partition_nodes_rcb(p.mesh.coords, 3)
            system = DistributedSystem.from_global(
                p.a, p.b, part, lambda sub, nodes: bic(sub, fill_level=0)
            )
            system.comm = FaultyComm(system.domains, seed=11, rate=0.25)
            res = parallel_cg(system)
            runs.append((res.reason, res.iterations, len(system.comm.injected)))
        assert runs[0] == runs[1]

    def test_halo_check_off_nan_still_caught_as_nan(self, block_problem_small):
        """Without the probe the NaN still trips the scalar guards — but
        only the probe gives the precise COMM_FAULT label."""
        p = block_problem_small
        system = _faulty_system(p, [FaultSpec(exchange=0, kind="nan")])
        res = parallel_cg(system, halo_check=False)
        assert not res.converged
        assert res.reason is FailureReason.NAN_DETECTED

    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(exchange=0, kind="gamma-ray")


# ----------------------------------------------------------------------
# nonlinear driver: penalty back-off + ladder wiring
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def alm_system():
    mesh = simple_block_model(2, 2, 2, 2, 2)
    k = assemble_stiffness(mesh)
    f = surface_load(mesh, mesh.node_sets["zmax"], np.array([0.0, 0.0, -1.0]))
    fixed = np.unique(
        np.concatenate(
            [
                all_dofs(mesh.node_sets["zmin"]),
                component_dofs(mesh.node_sets["xmin"], 0),
                component_dofs(mesh.node_sets["ymin"], 1),
            ]
        )
    )
    a_free, b = apply_dirichlet(k.to_csr(), f, fixed)
    return mesh, a_free, b


class _NaNPrecond(Preconditioner):
    name = "nan"

    def apply(self, r, out=None):
        return np.full_like(np.asarray(r, dtype=float), np.nan)


class TestNonlinearResilience:
    def test_healthy_solve_never_backs_off(self, alm_system):
        mesh, a_free, b = alm_system
        res = solve_nonlinear_contact(
            a_free, b, mesh.contact_groups, mesh.n_nodes,
            penalty=1e4, precond_factory=lambda a: bic(a, fill_level=0),
        )
        assert res.converged
        assert res.penalty_backoffs == 0
        assert res.penalty == 1e4
        assert res.report is not None and not res.report.detections()

    def test_inner_failure_triggers_penalty_backoff(self, alm_system):
        """A poisoned inner solve must not propagate a bogus displacement
        field: the driver backs the penalty off, rebuilds, retries."""
        mesh, a_free, b = alm_system
        calls = {"n": 0}

        def flaky_factory(a):
            calls["n"] += 1
            if calls["n"] == 1:
                return _NaNPrecond()
            return bic(a, fill_level=0)

        res = solve_nonlinear_contact(
            a_free, b, mesh.contact_groups, mesh.n_nodes,
            penalty=1e4, precond_factory=flaky_factory,
        )
        assert res.converged
        assert res.penalty_backoffs == 1
        assert res.penalty == pytest.approx(1e3)
        assert np.isfinite(res.u).all()
        kinds = [e.kind for e in res.report.events]
        assert "retry" in kinds and "recover" in kinds
        reasons = [e.reason for e in res.report.detections()]
        assert FailureReason.NAN_DETECTED in reasons

    def test_backoff_budget_exhaustion_flags_failure(self, alm_system):
        mesh, a_free, b = alm_system
        res = solve_nonlinear_contact(
            a_free, b, mesh.contact_groups, mesh.n_nodes,
            penalty=1e4, precond_factory=lambda a: _NaNPrecond(),
            max_penalty_backoffs=1,
        )
        assert not res.converged
        assert res.penalty_backoffs == 1
        # the garbage iterate was never folded into u
        assert np.isfinite(res.u).all()

    def test_ladder_factory_wiring(self, alm_system):
        mesh, a_free, b = alm_system
        res = solve_nonlinear_contact(
            a_free, b, mesh.contact_groups, mesh.n_nodes,
            penalty=1e4,
            precond_factory=lambda a: bic(a, fill_level=0),
            ladder_factory=lambda a: default_ladder(a, mesh.contact_groups),
        )
        ref = solve_nonlinear_contact(
            a_free, b, mesh.contact_groups, mesh.n_nodes,
            penalty=1e4, precond_factory=lambda a: bic(a, fill_level=0),
        )
        assert res.converged
        assert np.allclose(res.u, ref.u, atol=1e-8)


# ----------------------------------------------------------------------
# ladder memory hygiene: superseded rungs must be released
# ----------------------------------------------------------------------


class TestLadderMemoryRelease:
    def test_superseded_rung_factorization_released(self, block_problem_small):
        """A failed rung's factorization must not stay alive while later
        rungs (and, across ALM retries, later solves) run — the largest
        factorization leaking per retry is unbounded memory growth."""
        import gc
        import weakref

        p = block_problem_small
        refs = []

        def tracked_sbbic():
            m = sb_bic0(p.a, p.groups, n_nodes=p.mesh.n_nodes)
            stats = m.factorization_stats()
            assert stats["numeric_setups"] == 1  # fresh build each retry
            refs.append(weakref.ref(m))
            return m

        ladder = [
            FallbackStage("SB-BIC(0)", tracked_sbbic),
            FallbackStage("Diagonal", lambda: DiagonalScaling(p.a)),
        ]
        # simulate ALM retries: several solves, each forced to escalate
        # past the SB-BIC(0) rung by an iteration cap it cannot meet
        for _ in range(3):
            solver = ResilientSolver(p.a, ladder, max_iter=2)
            res = solver.solve(p.b)
            assert not res.converged  # the cap guarantees escalation ran
        gc.collect()
        assert len(refs) == 3
        alive = [r for r in refs if r() is not None]
        assert alive == [], (
            f"{len(alive)} superseded rung factorization(s) still alive "
            "after escalation — ResilientSolver must drop its reference "
            "before building the next rung"
        )
