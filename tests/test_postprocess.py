import numpy as np
import pytest

from repro.fem.generators import box_mesh
from repro.fem.material import IsotropicElastic
from repro.fem.postprocess import (
    element_strains,
    element_stresses,
    fault_stress_accumulation,
    nodal_average,
    von_mises,
)


@pytest.fixture(scope="module")
def box():
    return box_mesh(3, 3, 3)


def linear_field(mesh, grad):
    """u_i = grad[i, j] * x_j — constant-strain displacement field."""
    return (mesh.coords @ np.asarray(grad).T).reshape(-1)


class TestStrains:
    def test_uniform_extension(self, box):
        eps = element_strains(box, linear_field(box, [[0.01, 0, 0], [0, 0, 0], [0, 0, 0]]))
        assert np.allclose(eps[:, 0], 0.01)
        assert np.allclose(eps[:, 1:], 0.0, atol=1e-14)

    def test_simple_shear(self, box):
        # u_x = 0.02 * y -> engineering shear gamma_xy = 0.02
        eps = element_strains(box, linear_field(box, [[0, 0.02, 0], [0, 0, 0], [0, 0, 0]]))
        assert np.allclose(eps[:, 3], 0.02)
        assert np.allclose(eps[:, [0, 1, 2, 4, 5]], 0.0, atol=1e-14)

    def test_rigid_rotation_strain_free(self, box):
        # infinitesimal rotation: u = omega x r
        eps = element_strains(box, linear_field(box, [[0, -0.01, 0], [0.01, 0, 0], [0, 0, 0]]))
        assert np.allclose(eps, 0.0, atol=1e-13)

    def test_shape_validation(self, box):
        with pytest.raises(ValueError, match="shape"):
            element_strains(box, np.zeros(5))


class TestStresses:
    def test_uniaxial_strain_stress(self, box):
        mat = IsotropicElastic(1.0, 0.3)
        s = element_stresses(box, linear_field(box, [[0.01, 0, 0], [0, 0, 0], [0, 0, 0]]), mat)
        d = mat.elasticity_matrix()
        assert np.allclose(s[:, 0], d[0, 0] * 0.01)
        assert np.allclose(s[:, 1], d[1, 0] * 0.01)

    def test_material_dict(self, box):
        mats = {0: IsotropicElastic(2.0, 0.3)}
        s = element_stresses(box, linear_field(box, [[0.01, 0, 0], [0, 0, 0], [0, 0, 0]]), mats)
        assert np.allclose(s[:, 0], 2.0 * IsotropicElastic(1.0, 0.3).elasticity_matrix()[0, 0] * 0.01)

    def test_missing_material(self, box):
        with pytest.raises(ValueError, match="missing"):
            element_stresses(box, np.zeros(box.ndof), {5: IsotropicElastic()})


class TestVonMises:
    def test_pure_hydrostatic_is_zero(self):
        s = np.array([[2.0, 2.0, 2.0, 0.0, 0.0, 0.0]])
        assert np.isclose(von_mises(s)[0], 0.0)

    def test_uniaxial(self):
        s = np.array([[3.0, 0.0, 0.0, 0.0, 0.0, 0.0]])
        assert np.isclose(von_mises(s)[0], 3.0)

    def test_pure_shear(self):
        s = np.array([[0.0, 0.0, 0.0, 2.0, 0.0, 0.0]])
        assert np.isclose(von_mises(s)[0], 2.0 * np.sqrt(3.0))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            von_mises(np.zeros((3, 5)))


class TestNodalAverage:
    def test_constant_field_preserved(self, box):
        vals = np.full(box.n_elem, 7.0)
        out = nodal_average(box, vals)
        assert np.allclose(out, 7.0)

    def test_vector_valued(self, box):
        vals = np.ones((box.n_elem, 6)) * np.arange(6)
        out = nodal_average(box, vals)
        assert out.shape == (box.n_nodes, 6)
        assert np.allclose(out, np.arange(6))


class TestFaultAccumulation:
    def test_values_per_group(self, block_problem_small):
        from repro.precond import sb_bic0
        from repro.solvers.cg import cg_solve

        prob = block_problem_small
        res = cg_solve(prob.a, prob.b, sb_bic0(prob.a, prob.groups))
        acc = fault_stress_accumulation(prob.mesh, res.x)
        assert acc.shape == (len(prob.mesh.contact_groups),)
        assert np.isfinite(acc).all()
        assert (acc >= 0).all()
        assert acc.max() > 0
