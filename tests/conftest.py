"""Shared fixtures: small meshes, assembled problems, reference solutions."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.fem.generators import box_mesh, simple_block_model, southwest_japan_model
from repro.fem.model import build_contact_problem


@pytest.fixture(scope="session")
def box3():
    return box_mesh(3, 3, 3)


@pytest.fixture(scope="session")
def block_mesh_small():
    return simple_block_model(3, 3, 2, 3, 3)


@pytest.fixture(scope="session")
def swj_mesh_small():
    return southwest_japan_model(6, 4, 2, 2)


@pytest.fixture(scope="session")
def block_problem_small(block_mesh_small):
    return build_contact_problem(block_mesh_small, penalty=1e4)


@pytest.fixture(scope="session")
def block_problem_stiff(block_mesh_small):
    return build_contact_problem(block_mesh_small, penalty=1e8)


@pytest.fixture(scope="session")
def swj_problem_small(swj_mesh_small):
    return build_contact_problem(
        swj_mesh_small, penalty=1e4, load="body", symmetry=False
    )


@pytest.fixture(scope="session")
def block_reference(block_problem_small):
    return spla.spsolve(block_problem_small.a.tocsc(), block_problem_small.b)


def random_spd_csr(n: int, density: float, rng: np.random.Generator) -> sp.csr_matrix:
    """Random sparse SPD matrix (diagonally dominant) for property tests."""
    m = sp.random(n, n, density=density, random_state=np.random.RandomState(rng.integers(2**31)))
    a = (m + m.T).tocsr()
    row_sums = np.asarray(abs(a).sum(axis=1)).reshape(-1)
    a.setdiag(row_sums + 1.0)
    a.sum_duplicates()
    a.sort_indices()
    return a
