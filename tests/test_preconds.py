"""Preconditioner wrappers on the real FEM contact problems."""

import numpy as np
import pytest
import scipy.sparse.linalg as spla

from repro.fem.model import build_contact_problem
from repro.precond import DiagonalScaling, bic, sb_bic0, scalar_ic0
from repro.solvers.cg import cg_solve


def _solve(prob, m, max_iter=8000):
    return cg_solve(prob.a, prob.b, m, max_iter=max_iter)


class TestAllPrecondsSolveCorrectly:
    @pytest.mark.parametrize(
        "maker",
        [
            lambda p: DiagonalScaling(p.a),
            lambda p: scalar_ic0(p.a),
            lambda p: bic(p.a, fill_level=0),
            lambda p: bic(p.a, fill_level=1),
            lambda p: sb_bic0(p.a, p.groups),
        ],
        ids=["diag", "ic0", "bic0", "bic1", "sbbic0"],
    )
    def test_block_problem(self, block_problem_small, block_reference, maker):
        res = _solve(block_problem_small, maker(block_problem_small))
        assert res.converged
        err = np.linalg.norm(res.x - block_reference) / np.linalg.norm(block_reference)
        assert err < 1e-6

    def test_swjapan_sbbic(self, swj_problem_small):
        res = _solve(swj_problem_small, sb_bic0(swj_problem_small.a, swj_problem_small.groups))
        assert res.converged
        ref = spla.spsolve(swj_problem_small.a.tocsc(), swj_problem_small.b)
        assert np.linalg.norm(res.x - ref) / np.linalg.norm(ref) < 1e-6


class TestPaperOrderings:
    def test_iteration_ranking(self, block_problem_small):
        """BIC(1) < SB-BIC(0) < BIC(0) iterations (Table 2 ordering)."""
        its = {}
        for name, m in [
            ("bic0", bic(block_problem_small.a, fill_level=0)),
            ("bic1", bic(block_problem_small.a, fill_level=1)),
            ("sb", sb_bic0(block_problem_small.a, block_problem_small.groups)),
        ]:
            its[name] = _solve(block_problem_small, m).iterations
        assert its["bic1"] <= its["sb"] <= its["bic0"]

    def test_sb_lambda_independence(self, block_mesh_small):
        iters = []
        for lam in (1e2, 1e8):
            prob = build_contact_problem(block_mesh_small, penalty=lam)
            m = sb_bic0(prob.a, prob.groups)
            iters.append(_solve(prob, m).iterations)
        assert abs(iters[1] - iters[0]) <= max(2, 0.05 * iters[0])

    def test_bic0_lambda_degradation(self, block_mesh_small):
        iters = []
        for lam in (1e2, 1e8):
            prob = build_contact_problem(block_mesh_small, penalty=lam)
            iters.append(_solve(prob, bic(prob.a, fill_level=0)).iterations)
        assert iters[1] > 1.5 * iters[0]

    def test_memory_ranking(self, block_problem_small):
        p = block_problem_small
        mem = {
            "bic0": bic(p.a, fill_level=0).memory_bytes(),
            "bic1": bic(p.a, fill_level=1).memory_bytes(),
            "bic2": bic(p.a, fill_level=2).memory_bytes(),
            "sb": sb_bic0(p.a, p.groups).memory_bytes(),
        }
        assert mem["sb"] < 1.5 * mem["bic0"]
        assert mem["bic0"] < mem["bic1"] < mem["bic2"]

    def test_sb_beats_bic0_on_stiff_problem(self, block_problem_stiff):
        p = block_problem_stiff
        it_sb = _solve(p, sb_bic0(p.a, p.groups)).iterations
        it_b0 = _solve(p, bic(p.a, fill_level=0)).iterations
        assert it_sb < it_b0 / 2

    def test_color_count_changes_schedule_not_solution(self, block_problem_small):
        p = block_problem_small
        sols = []
        for nc in (2, 8, 32):
            m = sb_bic0(p.a, p.groups, ncolors=nc)
            sols.append(_solve(p, m).x)
        for s in sols[1:]:
            assert np.allclose(s, sols[0], atol=1e-5)

    def test_sort_blocks_flag_does_not_change_convergence_much(self, block_problem_small):
        p = block_problem_small
        it_sorted = _solve(p, sb_bic0(p.a, p.groups, sort_blocks_by_size=True)).iterations
        it_unsorted = _solve(p, sb_bic0(p.a, p.groups, sort_blocks_by_size=False)).iterations
        assert abs(it_sorted - it_unsorted) <= max(5, 0.2 * it_sorted)


class TestWrapperValidation:
    def test_bic_requires_block_multiple(self):
        import scipy.sparse as sp

        with pytest.raises(ValueError, match="multiple"):
            bic(sp.eye(10).tocsr(), fill_level=0)

    def test_sbbic_requires_block_multiple(self):
        import scipy.sparse as sp

        with pytest.raises(ValueError, match="multiple"):
            sb_bic0(sp.eye(10).tocsr(), [])

    def test_diagonal_rejects_zero_diag(self):
        import scipy.sparse as sp

        a = sp.csr_matrix(np.array([[1.0, 1.0], [1.0, 0.0]]))
        with pytest.raises(ValueError, match="zero diagonal"):
            DiagonalScaling(a)

    def test_names(self, block_problem_small):
        p = block_problem_small
        assert bic(p.a, fill_level=2).name == "BIC(2)"
        assert sb_bic0(p.a, p.groups).name == "SB-BIC(0)"
        assert scalar_ic0(p.a).name == "IC(0) scalar"
