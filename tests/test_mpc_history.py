import numpy as np
import pytest

from repro.fem.generators import simple_block_model
from repro.fem.model import build_contact_problem
from repro.fem.mpc import (
    master_map,
    reduce_system,
    solve_tied_exact,
    tied_contact_transformation,
)
from repro.precond import sb_bic0
from repro.solvers.cg import cg_solve
from repro.solvers.history import analyze_history


class TestMasterMap:
    def test_identity_without_groups(self):
        assert np.array_equal(master_map([], 4), np.arange(4))

    def test_groups_collapse_to_first(self):
        m = master_map([np.array([1, 3])], 4)
        assert m.tolist() == [0, 1, 2, 1]


class TestTransformation:
    def test_shape_and_partition(self):
        t = tied_contact_transformation([np.array([0, 2])], 3, b=3)
        assert t.shape == (9, 6)
        # every full DOF maps to exactly one master DOF
        assert np.allclose(np.asarray(t.sum(axis=1)).reshape(-1), 1.0)

    def test_slave_copies_master(self):
        t = tied_contact_transformation([np.array([0, 2])], 3, b=3).toarray()
        assert np.array_equal(t[0:3], t[6:9])  # node 2 copies node 0


class TestReduction:
    def test_reduced_system_spd(self, block_problem_small):
        p = block_problem_small
        a_red, b_red, t = reduce_system(p.a, p.b, p.groups, p.mesh.n_nodes)
        assert a_red.shape[0] == b_red.size == t.shape[1]
        d = a_red - a_red.T
        assert not d.nnz or abs(d.data).max() < 1e-8

    def test_penalty_solution_converges_to_exact(self):
        """As lambda grows, the penalty solution approaches the exactly
        eliminated (MPC) solution — validating both formulations."""
        mesh = simple_block_model(3, 3, 2, 3, 3)
        # exact solution from the penalty-free stiffness
        from repro.fem.assembly import assemble_stiffness
        from repro.fem.bc import all_dofs, apply_dirichlet, component_dofs, surface_load

        k = assemble_stiffness(mesh)
        f = surface_load(mesh, mesh.node_sets["zmax"], np.array([0.0, 0.0, -1.0]))
        fixed = np.unique(
            np.concatenate(
                [
                    all_dofs(mesh.node_sets["zmin"]),
                    component_dofs(mesh.node_sets["xmin"], 0),
                    component_dofs(mesh.node_sets["ymin"], 1),
                ]
            )
        )
        a_free, b = apply_dirichlet(k.to_csr(), f, fixed)
        exact = solve_tied_exact(a_free, b, mesh.contact_groups, mesh.n_nodes)

        errs = []
        for lam in (1e3, 1e6):
            prob = build_contact_problem(mesh, penalty=lam)
            res = cg_solve(prob.a, prob.b, sb_bic0(prob.a, prob.groups))
            errs.append(np.linalg.norm(res.x - exact) / np.linalg.norm(exact))
        assert errs[1] < errs[0]
        assert errs[1] < 1e-4

    def test_dimension_validation(self, block_problem_small):
        p = block_problem_small
        with pytest.raises(ValueError, match="dimension"):
            reduce_system(p.a, p.b, p.groups, p.mesh.n_nodes + 1)


class TestHistoryAnalysis:
    def test_geometric_history_is_smooth(self):
        h = 0.5 ** np.arange(20)
        prof = analyze_history(h)
        assert prof.oscillation_ratio == 0.0
        assert prof.plateau_length == 0
        assert np.isclose(prof.mean_reduction, 0.5)
        assert prof.is_smooth

    def test_oscillating_history_detected(self):
        h = np.array([1.0, 0.5, 0.8, 0.4, 0.7, 0.3, 0.6, 0.2])
        prof = analyze_history(h)
        assert prof.oscillation_ratio > 0.3

    def test_plateau_detected(self):
        h = np.concatenate([[1.0], np.full(60, 0.999), [1e-9]])
        prof = analyze_history(h)
        assert prof.plateau_length >= 59
        assert not prof.is_smooth

    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            analyze_history(np.array([1.0]))

    def test_real_sb_history_smooth(self, block_problem_stiff):
        p = block_problem_stiff
        res = cg_solve(p.a, p.b, sb_bic0(p.a, p.groups))
        assert analyze_history(res.history).is_smooth

    def test_exact_zero_final_residual_is_true_convergence(self):
        # regression: an exact-zero last residual used to clamp
        # mean_reduction to ~1e-300**(1/it) instead of reporting 0.0
        h = np.array([1.0, 0.1, 0.0])
        prof = analyze_history(h)
        assert prof.mean_reduction == 0.0
        assert not prof.diverged

    def test_nan_history_is_diverged_not_smooth(self):
        # regression: NaN step ratios compared False against every
        # threshold, so a blown-up history scored "smooth"
        h = np.array([1.0, 0.5, np.nan, np.nan])
        prof = analyze_history(h)
        assert prof.diverged
        assert not prof.is_smooth
        assert prof.mean_reduction == np.inf

    def test_inf_history_is_diverged(self):
        h = np.array([1.0, 10.0, np.inf, np.inf])
        prof = analyze_history(h)
        assert prof.diverged
        assert not prof.is_smooth
        # every non-finite step counts as an uptick
        assert prof.oscillation_ratio == 1.0

    def test_finite_history_not_flagged_diverged(self):
        prof = analyze_history(0.5 ** np.arange(10))
        assert not prof.diverged


class TestOverlappingElements:
    def test_cover_and_overlap(self):
        from repro.parallel import partition_nodes_rcb
        from repro.parallel.partition import overlapping_elements

        mesh = simple_block_model(3, 3, 2, 3, 3)
        part = partition_nodes_rcb(mesh.coords, 4)
        over = overlapping_elements(mesh.hexes, part)
        # every element appears in at least one domain
        assert np.array_equal(
            np.unique(np.concatenate(over)), np.arange(mesh.n_elem)
        )
        # boundary elements appear in more than one (that's the overlap)
        total = sum(o.size for o in over)
        assert total > mesh.n_elem

    def test_each_domain_sees_its_nodes_elements(self):
        from repro.parallel import partition_nodes_rcb
        from repro.parallel.partition import overlapping_elements

        mesh = simple_block_model(3, 3, 2, 3, 3)
        part = partition_nodes_rcb(mesh.coords, 3)
        over = overlapping_elements(mesh.hexes, part)
        for d, elems in enumerate(over):
            touched = np.unique(mesh.hexes[elems])
            internal = np.flatnonzero(part == d)
            # every internal node that belongs to any element is covered
            in_any_elem = np.unique(mesh.hexes)
            needed = np.intersect1d(internal, in_any_elem)
            assert np.isin(needed, touched).all()
