import numpy as np
import pytest
import scipy.sparse as sp

from repro.fem.assembly import assemble_stiffness, element_volumes
from repro.fem.bc import (
    all_dofs,
    apply_dirichlet,
    body_force,
    boundary_faces,
    component_dofs,
    surface_load,
)
from repro.fem.generators import box_mesh
from repro.fem.material import IsotropicElastic


class TestAssembly:
    def test_symmetric(self, box3):
        k = assemble_stiffness(box3)
        assert k.is_symmetric()

    def test_positive_semidefinite(self, box3):
        k = assemble_stiffness(box3).to_csr()
        vals = np.linalg.eigvalsh(k.toarray())
        assert vals.min() > -1e-9

    def test_rigid_modes_in_kernel(self, box3):
        k = assemble_stiffness(box3)
        for comp in range(3):
            u = np.zeros(box3.ndof)
            u[comp::3] = 1.0
            assert np.allclose(k.matvec(u), 0.0, atol=1e-10)

    def test_material_dict(self, block_mesh_small):
        mats = {i: IsotropicElastic(float(i + 1), 0.3) for i in range(3)}
        k = assemble_stiffness(block_mesh_small, mats)
        assert k.is_symmetric()

    def test_missing_material_rejected(self, block_mesh_small):
        with pytest.raises(ValueError, match="missing"):
            assemble_stiffness(block_mesh_small, {0: IsotropicElastic()})

    def test_stiffness_scales_with_modulus(self, box3):
        k1 = assemble_stiffness(box3, IsotropicElastic(1.0, 0.3)).to_csr()
        k2 = assemble_stiffness(box3, IsotropicElastic(2.0, 0.3)).to_csr()
        assert np.allclose((k2 - 2 * k1).toarray(), 0.0, atol=1e-12)

    def test_element_volumes(self, box3):
        assert np.allclose(element_volumes(box3), 1.0)


class TestDirichlet:
    def test_rows_cols_cleared(self, box3):
        k = assemble_stiffness(box3).to_csr()
        fixed = all_dofs(box3.node_sets["zmin"])
        a, b = apply_dirichlet(k, np.ones(box3.ndof), fixed)
        dense = a.toarray()
        free = np.setdiff1d(np.arange(box3.ndof), fixed)
        assert np.allclose(dense[np.ix_(fixed, free)], 0.0)
        assert np.allclose(dense[np.ix_(free, fixed)], 0.0)

    def test_diag_preserved(self, box3):
        k = assemble_stiffness(box3).to_csr()
        fixed = all_dofs(box3.node_sets["zmin"])
        a, _ = apply_dirichlet(k, np.zeros(box3.ndof), fixed)
        assert np.allclose(a.diagonal()[fixed], k.diagonal()[fixed])

    def test_nonzero_values_move_to_rhs(self, box3):
        k = assemble_stiffness(box3).to_csr()
        fixed = all_dofs(box3.node_sets["zmin"])
        vals = 0.1
        a, b = apply_dirichlet(k, np.zeros(box3.ndof), fixed, values=vals)
        x = sp.linalg.spsolve(a.tocsc(), b)
        assert np.allclose(x[fixed], vals)

    def test_makes_system_spd(self, box3):
        k = assemble_stiffness(box3).to_csr()
        fixed = np.concatenate(
            [
                all_dofs(box3.node_sets["zmin"]),
                component_dofs(box3.node_sets["xmin"], 0),
                component_dofs(box3.node_sets["ymin"], 1),
            ]
        )
        a, _ = apply_dirichlet(k, np.zeros(box3.ndof), fixed)
        vals = np.linalg.eigvalsh(a.toarray())
        assert vals.min() > 1e-10

    def test_out_of_range_rejected(self, box3):
        k = assemble_stiffness(box3).to_csr()
        with pytest.raises(ValueError, match="range"):
            apply_dirichlet(k, np.zeros(box3.ndof), np.array([box3.ndof]))

    def test_component_dofs_validation(self):
        with pytest.raises(ValueError):
            component_dofs(np.array([0]), 3)


class TestLoads:
    def test_surface_load_total_force(self):
        m = box_mesh(3, 4, 2)
        f = surface_load(m, m.node_sets["zmax"], np.array([0.0, 0.0, -2.0]))
        # total z-force = traction * area (3x4 surface)
        assert np.isclose(f[2::3].sum(), -2.0 * 12.0)
        assert np.allclose(f[0::3], 0.0) and np.allclose(f[1::3], 0.0)

    def test_surface_load_corner_weighting(self):
        """Corner nodes carry 1/4 of a single face, interior 4 faces."""
        m = box_mesh(2, 2, 1)
        f = surface_load(m, m.node_sets["zmax"], np.array([0.0, 0.0, 1.0]))
        fz = f[2::3]
        top = m.node_sets["zmax"]
        center = [n for n in top if np.allclose(m.coords[n, :2], [1.0, 1.0])][0]
        corner = [n for n in top if np.allclose(m.coords[n, :2], [0.0, 0.0])][0]
        assert np.isclose(fz[center], 1.0)
        assert np.isclose(fz[corner], 0.25)

    def test_surface_load_requires_faces(self, box3):
        with pytest.raises(ValueError, match="face"):
            surface_load(box3, np.array([0]), np.array([0.0, 0.0, 1.0]))

    def test_body_force_total(self):
        m = box_mesh(2, 3, 4)
        f = body_force(m, np.array([0.0, 0.0, -1.0]))
        assert np.isclose(f[2::3].sum(), -24.0)  # volume = 2*3*4

    def test_bad_traction_shape(self, box3):
        with pytest.raises(ValueError):
            surface_load(box3, box3.node_sets["zmax"], np.zeros(2))

    def test_boundary_faces_counts(self):
        m = box_mesh(3, 4, 2)
        faces = boundary_faces(m, m.node_sets["zmax"])
        assert faces.shape == (12, 4)
