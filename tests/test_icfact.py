"""The factorization engine: correctness of the colored batched IC."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.precond.icfact import BlockICFactorization
from repro.solvers.cg import cg_solve


def spd_csr(ndof, seed, density=0.25):
    rng = np.random.default_rng(seed)
    m = sp.random(ndof, ndof, density=density, random_state=np.random.RandomState(seed))
    a = (m + m.T).tocsr()
    a.setdiag(np.asarray(abs(a).sum(axis=1)).reshape(-1) + 1.0)
    a.sum_duplicates()
    a.sort_indices()
    return a


def node_parts(ndof, b=3):
    return [np.arange(i, i + b) for i in range(0, ndof, b)]


def dof_parts(ndof):
    return [np.array([i]) for i in range(ndof)]


class TestExactLimits:
    def test_single_supernode_is_exact_solver(self):
        """One selective block covering everything = direct solve."""
        a = spd_csr(12, 0)
        m = BlockICFactorization(a, [np.arange(12)], fill_level=0)
        rng = np.random.default_rng(1)
        x = rng.normal(size=12)
        assert np.allclose(m.apply(a @ x), x, atol=1e-8)

    def test_block_diagonal_matrix_solved_exactly(self):
        """If A is block diagonal w.r.t. the super-nodes, M = A."""
        blocks = [np.array([[4.0, 1.0], [1.0, 3.0]]), np.array([[5.0]])]
        a = sp.block_diag(blocks).tocsr()
        m = BlockICFactorization(a, [np.array([0, 1]), np.array([2])], fill_level=0)
        x = np.array([1.0, -2.0, 3.0])
        assert np.allclose(m.apply(a @ x), x)

    @pytest.mark.parametrize("fill_level", [0, 1, 2])
    def test_full_variant_matches_reference_ic(self, fill_level):
        """The batched color-scheduled factorization must equal a naive
        sequential incomplete Cholesky on the same pattern/ordering."""
        n = 20
        a = spd_csr(n, 100 + fill_level, density=0.3)
        m = BlockICFactorization(a, dof_parts(n), fill_level=fill_level, variant="full")
        got = m.factor_csr().toarray()
        ref = _reference_ic_lower(a, m)
        assert np.allclose(got, ref, atol=1e-10)

    def test_dmod_variant_matches_reference(self):
        """D-mod: off-diagonals untouched, diagonal recurrence exact."""
        n = 18
        a = spd_csr(n, 200, density=0.3)
        m = BlockICFactorization(a, dof_parts(n), fill_level=0, variant="dmod")
        perm = m.perm_dof
        ap = a[perm][:, perm].toarray()
        lower = m.factor_csr().toarray()
        # off-diagonals must equal A's (permuted) lower triangle
        assert np.allclose(np.tril(lower, -1), np.tril(ap, -1) * (np.tril(lower, -1) != 0))
        # diagonal recurrence: d_i = a_ii - sum_k a_ik^2 / d_k over pattern
        d = np.zeros(n)
        pat = np.tril(ap, -1) != 0
        for i in range(n):
            d[i] = ap[i, i] - sum(ap[i, k] ** 2 / d[k] for k in range(i) if pat[i, k])
        assert np.allclose(np.diag(lower), d, atol=1e-10)

    def test_dense_pattern_level2_nearly_exact(self):
        """On a small dense-ish SPD matrix, IC(2) captures almost all fill."""
        a = spd_csr(9, 3, density=0.5)
        m = BlockICFactorization(a, dof_parts(9), fill_level=2, variant="full")
        res = cg_solve(a, np.ones(9), m, eps=1e-12)
        assert res.iterations <= 6


def _reference_ic_lower(a: sp.csr_matrix, m: BlockICFactorization) -> np.ndarray:
    """Naive sequential IC on the engine's own pattern and ordering."""
    perm = m.perm_dof
    n = a.shape[0]
    ap = a[perm][:, perm].toarray()
    pattern = np.zeros((n, n), dtype=bool)
    pattern[m.L.block_rows(), m.L.indices] = True
    v = np.where(pattern, np.tril(ap), 0.0)
    for k in range(n):
        dk = v[k, k]
        nbrs = [i for i in range(k + 1, n) if pattern[i, k]]
        for ii, i in enumerate(nbrs):
            for j in nbrs[: ii + 1]:
                if pattern[i, j]:
                    v[i, j] -= v[i, k] * v[j, k] / dk
    return v


class TestVariants:
    @pytest.mark.parametrize("variant", ["dmod", "full"])
    def test_preconditioner_is_spd_action(self, variant):
        a = spd_csr(18, 4)
        m = BlockICFactorization(a, node_parts(18), fill_level=0, variant=variant)
        rng = np.random.default_rng(5)
        # symmetry: <x, M^{-1} y> == <M^{-1} x, y>
        x, y = rng.normal(size=18), rng.normal(size=18)
        assert np.isclose(x @ m.apply(y), m.apply(x) @ y, rtol=1e-10)
        # positive definiteness on a few vectors
        for _ in range(4):
            v = rng.normal(size=18)
            assert v @ m.apply(v) > 0

    def test_dmod_rejects_fill(self):
        a = spd_csr(9, 6)
        with pytest.raises(ValueError, match="dmod"):
            BlockICFactorization(a, node_parts(9), fill_level=1, variant="dmod")

    def test_auto_variant_selection(self):
        a = spd_csr(9, 7)
        m0 = BlockICFactorization(a, node_parts(9), fill_level=0)
        m1 = BlockICFactorization(a, node_parts(9), fill_level=1)
        assert m0.variant == "dmod"
        assert m1.variant == "full"

    def test_apply_m_inverts_apply(self):
        a = spd_csr(15, 8)
        for variant in ("dmod", "full"):
            m = BlockICFactorization(a, node_parts(15), fill_level=0, variant=variant)
            rng = np.random.default_rng(9)
            v = rng.normal(size=15)
            assert np.allclose(m.apply_m(m.apply(v)), v, atol=1e-8)
            assert np.allclose(m.apply(m.apply_m(v)), v, atol=1e-8)


class TestStructure:
    def test_schedule_covers_all_supernodes(self):
        a = spd_csr(21, 10)
        m = BlockICFactorization(a, node_parts(21), fill_level=0)
        seen = np.concatenate(m.schedule)
        assert np.sort(seen).tolist() == list(range(m.L.N))

    def test_schedule_respects_dependencies(self):
        """Every lower off-diagonal block joins a row in a later group."""
        a = spd_csr(24, 11)
        m = BlockICFactorization(a, node_parts(24), fill_level=1)
        group_of = np.empty(m.L.N, dtype=int)
        for g, mem in enumerate(m.schedule):
            group_of[mem] = g
        brow = m.L.block_rows()
        off = m.L.indices != brow
        assert np.all(group_of[m.L.indices[off]] < group_of[brow[off]])

    def test_size_sorting_within_color(self):
        a = spd_csr(24, 12)
        parts = [np.arange(0, 6), np.arange(6, 9), np.arange(9, 12)] + [
            np.array([i]) for i in range(12, 24)
        ]
        m = BlockICFactorization(a, parts, fill_level=0, sort_blocks_by_size=True)
        colors = np.empty(m.L.N, dtype=int)
        for g, mem in enumerate(m.schedule):
            colors[mem] = g
        # within each schedule group in *ordering* position, sizes must
        # be non-increasing (groups are contiguous for fill_level=0)
        for g, mem in enumerate(m.schedule):
            assert np.all(np.diff(m.sizes[np.sort(mem)]) <= 0)

    def test_level_schedule_matches_naive_recurrence(self):
        """The vectorized topological wave sweep must produce exactly the
        waves of the per-row recurrence wave[i] = max(wave[nbrs]) + 1."""
        a = spd_csr(36, 42, density=0.2)
        m = BlockICFactorization(a, node_parts(36), fill_level=1)
        indptr, indices = m.L.indptr, m.L.indices
        wave = np.zeros(m.L.N, dtype=np.int64)
        for i in range(m.L.N):
            nbrs = indices[indptr[i] : indptr[i + 1] - 1]  # exclude diagonal
            if nbrs.size:
                wave[i] = wave[nbrs].max() + 1
        ref = [np.flatnonzero(wave == w) for w in range(int(wave.max()) + 1)]
        assert len(m.schedule) == len(ref)
        for got, want in zip(m.schedule, ref):
            assert np.array_equal(np.sort(got), want)

    def test_memory_grows_with_fill(self):
        a = spd_csr(30, 13)
        mems = [
            BlockICFactorization(a, node_parts(30), fill_level=k).memory_bytes()
            for k in (0, 1, 2)
        ]
        assert mems[0] <= mems[1] <= mems[2]

    def test_nnz_fill_zero_at_level0(self):
        a = spd_csr(15, 14)
        m = BlockICFactorization(a, node_parts(15), fill_level=0)
        assert m.nnz_fill == 0

    def test_group_sizes_reported(self):
        a = spd_csr(15, 15)
        m = BlockICFactorization(a, node_parts(15), fill_level=0)
        assert m.group_sizes().sum() == m.L.N


class TestConvergenceAcceleration:
    def test_fill_reduces_iterations(self):
        a = spd_csr(60, 16, density=0.15)
        b = np.ones(60)
        iters = []
        for k in (0, 1, 2):
            m = BlockICFactorization(a, node_parts(60), fill_level=k)
            iters.append(cg_solve(a, b, m, eps=1e-10).iterations)
        assert iters[2] <= iters[1] <= iters[0]

    def test_precond_beats_plain_cg(self):
        a = spd_csr(60, 17, density=0.15)
        b = np.ones(60)
        m = BlockICFactorization(a, node_parts(60), fill_level=0)
        plain = cg_solve(a, b, None, eps=1e-10)
        pre = cg_solve(a, b, m, eps=1e-10)
        assert pre.iterations <= plain.iterations

    def test_input_validation(self):
        a = spd_csr(9, 18)
        m = BlockICFactorization(a, node_parts(9), fill_level=0)
        with pytest.raises(ValueError, match="shape"):
            m.apply(np.zeros(8))

    def test_unknown_coloring_rejected(self):
        a = spd_csr(9, 19)
        with pytest.raises(ValueError, match="coloring"):
            BlockICFactorization(a, node_parts(9), coloring="zigzag")

    def test_cmrcm_coloring_works(self):
        a = spd_csr(21, 20)
        m = BlockICFactorization(a, node_parts(21), fill_level=0, coloring="cmrcm", ncolors=3)
        res = cg_solve(a, np.ones(21), m, eps=1e-10)
        assert res.converged


@settings(max_examples=15, deadline=None)
@given(nblocks=st.integers(2, 10), seed=st.integers(0, 10_000), k=st.integers(0, 1))
def test_property_preconditioned_cg_solves(nblocks, seed, k):
    ndof = 3 * nblocks
    a = spd_csr(ndof, seed)
    m = BlockICFactorization(a, node_parts(ndof), fill_level=k)
    rng = np.random.default_rng(seed)
    x = rng.normal(size=ndof)
    res = cg_solve(a, a @ x, m, eps=1e-10)
    assert res.converged
    assert np.allclose(res.x, x, atol=1e-5 * max(1.0, np.abs(x).max()))


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000), ncolors=st.integers(0, 12))
def test_property_color_count_does_not_change_correctness(seed, ncolors):
    ndof = 24
    a = spd_csr(ndof, seed)
    m = BlockICFactorization(a, node_parts(ndof), fill_level=0, ncolors=ncolors)
    res = cg_solve(a, np.ones(ndof), m, eps=1e-10)
    assert res.converged
