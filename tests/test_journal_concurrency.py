"""Journal atomicity under concurrent writers.

A fixed temporary name (``path + ".tmp"``) lets two concurrent writers
truncate each other's half-written temp file before the replace — the
classic atomic-write race the serve queue would hit when journaling from
several workers.  The implementation uses ``mkstemp`` (unique inode per
writer), making the final ``os.replace`` the only contention point, and
that one is atomic: every read observes some writer's *complete*
checkpoint, never a torn mix.
"""

from __future__ import annotations

import os
import threading

import numpy as np
import pytest

from repro.io.journal import JournalError, read_journal, write_journal


def _payload(tag: int, n: int = 4096) -> dict[str, np.ndarray]:
    # all-same-value payload: a torn mix of two writers cannot pass as
    # either one, and the checksum pins which writer's file we read
    return {"x": np.full(n, float(tag)), "tag": np.array([tag])}


class TestConcurrentWriters:
    def test_threaded_writers_same_path_never_corrupt(self, tmp_path):
        path = tmp_path / "contended.jnl"
        n_writers, rounds = 8, 12
        barrier = threading.Barrier(n_writers)
        errors: list[BaseException] = []

        def writer(tag: int) -> None:
            try:
                for r in range(rounds):
                    barrier.wait()  # maximize overlap every round
                    write_journal(path, _payload(tag), {"tag": tag, "round": r})
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(t,)) for t in range(n_writers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors

        arrays, meta = read_journal(path)  # must be SOME complete journal
        tag = int(arrays["tag"][0])
        assert 0 <= tag < n_writers
        assert (arrays["x"] == float(tag)).all()
        assert meta["tag"] == tag

    def test_concurrent_reader_sees_only_complete_journals(self, tmp_path):
        path = tmp_path / "live.jnl"
        write_journal(path, _payload(0), {"tag": 0})
        stop = threading.Event()
        bad: list[str] = []

        def reader() -> None:
            while not stop.is_set():
                try:
                    arrays, meta = read_journal(path)
                except JournalError as exc:  # torn read = atomicity broken
                    bad.append(str(exc))
                    return
                tag = int(arrays["tag"][0])
                if not (arrays["x"] == float(tag)).all() or meta["tag"] != tag:
                    bad.append(f"mixed payload for tag {tag}")
                    return

        t = threading.Thread(target=reader)
        t.start()
        for i in range(1, 40):
            write_journal(path, _payload(i % 5), {"tag": i % 5})
        stop.set()
        t.join()
        assert not bad, bad

    def test_no_temp_litter_after_contention(self, tmp_path):
        path = tmp_path / "clean.jnl"
        threads = [
            threading.Thread(target=write_journal, args=(path, _payload(t), {"tag": t}))
            for t in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        leftovers = [p.name for p in tmp_path.iterdir() if p.name != "clean.jnl"]
        assert leftovers == []

    def test_failed_write_cleans_its_temp(self, tmp_path):
        path = tmp_path / "fail.jnl"
        with pytest.raises(ValueError):
            # reserved array name triggers the failure before any replace
            write_journal(path, {"__meta_json__": np.zeros(1)}, {})
        assert list(tmp_path.iterdir()) == []

    def test_distinct_writers_distinct_paths_parallel(self, tmp_path):
        paths = [tmp_path / f"w{t}.jnl" for t in range(6)]
        threads = [
            threading.Thread(target=write_journal, args=(p, _payload(t), {"tag": t}))
            for t, p in enumerate(paths)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for t, p in enumerate(paths):
            arrays, meta = read_journal(p)
            assert meta["tag"] == t and (arrays["x"] == float(t)).all()

    def test_crash_between_tmp_and_replace_leaves_old_valid(self, tmp_path):
        """A writer that dies before os.replace must leave the previous
        journal untouched (simulated by failing the replace)."""
        path = tmp_path / "victim.jnl"
        write_journal(path, _payload(1), {"tag": 1})

        real_replace = os.replace

        def exploding_replace(src, dst):
            raise OSError("simulated crash during replace")

        os.replace = exploding_replace
        try:
            with pytest.raises(OSError, match="simulated"):
                write_journal(path, _payload(2), {"tag": 2})
        finally:
            os.replace = real_replace
        arrays, meta = read_journal(path)
        assert meta["tag"] == 1 and (arrays["x"] == 1.0).all()
