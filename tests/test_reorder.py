import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reorder import (
    Coloring,
    adjacency_from_pattern,
    cm_rcm,
    cuthill_mckee,
    greedy_color,
    multicolor,
    reverse_cuthill_mckee,
)
from repro.reorder.graph import is_independent_set


def random_graph(n, p, seed):
    rng = np.random.default_rng(seed)
    upper = rng.random((n, n)) < p
    m = np.triu(upper, 1)
    adj = m | m.T
    return adjacency_from_pattern(sp.csr_matrix(adj.astype(float)))


def grid_graph(nx, ny):
    g = sp.lil_matrix((nx * ny, nx * ny))
    for i in range(nx):
        for j in range(ny):
            v = i * ny + j
            if i + 1 < nx:
                g[v, (i + 1) * ny + j] = 1
            if j + 1 < ny:
                g[v, i * ny + j + 1] = 1
    return adjacency_from_pattern(g.tocsr())


class TestGreedyColor:
    def test_valid_coloring(self):
        adj = random_graph(30, 0.2, 0)
        colors = greedy_color(adj)
        Coloring(colors=colors, ncolors=int(colors.max()) + 1).validate(adj)

    def test_path_graph_two_colors(self):
        adj = grid_graph(1, 10)
        colors = greedy_color(adj)
        assert colors.max() + 1 == 2

    def test_complete_graph_needs_n(self):
        n = 5
        adj = adjacency_from_pattern(sp.csr_matrix(np.ones((n, n))))
        colors = greedy_color(adj)
        assert colors.max() + 1 == n


class TestMulticolor:
    def test_minimal_palette_by_default(self):
        adj = grid_graph(6, 6)
        col = multicolor(adj)
        assert col.ncolors <= 4  # grid is 2-chromatic; greedy may use a few more
        col.validate(adj)

    def test_target_colors_reached(self):
        adj = grid_graph(8, 8)
        col = multicolor(adj, ncolors=10)
        assert col.ncolors == 10
        col.validate(adj)

    def test_subdivision_balances_classes(self):
        adj = grid_graph(10, 10)
        col = multicolor(adj, ncolors=20)
        sizes = col.class_sizes()
        sizes = sizes[sizes > 0]
        assert sizes.max() <= 2 * max(sizes.min(), 1) + 2

    def test_target_below_chromatic_returns_base(self):
        n = 5
        adj = adjacency_from_pattern(sp.csr_matrix(np.ones((n, n))))
        col = multicolor(adj, ncolors=2)
        assert col.ncolors == n

    def test_target_above_n_clamped(self):
        adj = grid_graph(3, 3)
        col = multicolor(adj, ncolors=100)
        assert col.ncolors <= 9

    def test_negative_target_rejected(self):
        with pytest.raises(ValueError):
            multicolor(grid_graph(2, 2), ncolors=-1)

    def test_color_major_perm_orders_classes(self):
        adj = grid_graph(5, 5)
        col = multicolor(adj, ncolors=5)
        reordered_colors = col.colors[col.perm]
        assert np.all(np.diff(reordered_colors) >= 0)


class TestColoring:
    def test_validate_catches_conflict(self):
        adj = grid_graph(1, 3)  # path 0-1-2
        bad = Coloring(colors=np.array([0, 0, 1]), ncolors=2)
        with pytest.raises(ValueError, match="adjacent"):
            bad.validate(adj)

    def test_class_members_match_colors(self):
        adj = grid_graph(4, 4)
        col = multicolor(adj, ncolors=4)
        for c in range(col.ncolors):
            assert np.all(col.colors[col.class_members(c)] == c)

    def test_iperm_inverts_perm(self):
        adj = grid_graph(4, 4)
        col = multicolor(adj, ncolors=4)
        assert np.array_equal(col.iperm[col.perm], np.arange(col.n))


class TestCuthillMcKee:
    def test_perm_is_permutation(self):
        adj = random_graph(25, 0.15, 1)
        perm, levels = cuthill_mckee(adj)
        assert np.sort(perm).tolist() == list(range(25))
        assert levels[-1] == 25

    def test_levels_are_bfs_layers(self):
        adj = grid_graph(1, 6)  # path graph
        perm, levels = cuthill_mckee(adj, start=0)
        # each level of a path from an endpoint has exactly one vertex
        assert np.all(np.diff(levels) == 1)

    def test_rcm_reverses(self):
        adj = grid_graph(3, 4)
        perm, _ = cuthill_mckee(adj)
        rperm, _ = reverse_cuthill_mckee(adj)
        assert np.array_equal(rperm, perm[::-1])

    def test_rcm_reduces_bandwidth(self):
        rng = np.random.default_rng(2)
        adj = grid_graph(6, 6)
        perm, _ = reverse_cuthill_mckee(adj)
        iperm = np.empty(36, dtype=int)
        iperm[perm] = np.arange(36)
        coo = adj.tocoo()
        shuffled = rng.permutation(36)
        bw_rand = np.abs(shuffled[coo.row] - shuffled[coo.col]).max()
        bw_rcm = np.abs(iperm[coo.row] - iperm[coo.col]).max()
        assert bw_rcm <= bw_rand

    def test_disconnected_graph_covered(self):
        g = sp.block_diag([grid_graph(2, 2), grid_graph(2, 2)]).tocsr()
        adj = adjacency_from_pattern(g)
        perm, _ = cuthill_mckee(adj)
        assert np.sort(perm).tolist() == list(range(8))


class TestCMRCM:
    def test_valid_coloring_on_grid(self):
        adj = grid_graph(6, 6)
        col = cm_rcm(adj, 4)
        col.validate(adj)

    def test_valid_on_random(self):
        adj = random_graph(40, 0.15, 3)
        col = cm_rcm(adj, 5)
        col.validate(adj)

    def test_rejects_single_color(self):
        with pytest.raises(ValueError):
            cm_rcm(grid_graph(2, 2), 1)


class TestIndependentSet:
    def test_detects_dependence(self):
        adj = grid_graph(1, 3)
        assert not is_independent_set(adj, np.array([0, 1]))
        assert is_independent_set(adj, np.array([0, 2]))


@settings(max_examples=30, deadline=None)
@given(n=st.integers(3, 30), p=st.floats(0.05, 0.5), seed=st.integers(0, 10_000))
def test_property_multicolor_always_valid(n, p, seed):
    adj = random_graph(n, p, seed)
    rng = np.random.default_rng(seed)
    target = int(rng.integers(0, n + 1))
    col = multicolor(adj, ncolors=target)
    col.validate(adj)
    # every vertex gets exactly one color in range
    assert col.colors.min() >= 0 and col.colors.max() < col.ncolors


@settings(max_examples=30, deadline=None)
@given(n=st.integers(3, 25), p=st.floats(0.05, 0.5), seed=st.integers(0, 10_000))
def test_property_cmrcm_always_valid(n, p, seed):
    adj = random_graph(n, p, seed)
    col = cm_rcm(adj, 3)
    col.validate(adj)


@settings(max_examples=30, deadline=None)
@given(n=st.integers(2, 25), p=st.floats(0.05, 0.5), seed=st.integers(0, 10_000))
def test_property_cm_perm_valid(n, p, seed):
    adj = random_graph(n, p, seed)
    perm, levels = cuthill_mckee(adj)
    assert np.sort(perm).tolist() == list(range(n))
    assert levels[0] == 0 and levels[-1] == n
    assert np.all(np.diff(levels) >= 1)
