import numpy as np
import pytest

from repro.core.selective_blocking import (
    detect_contact_groups,
    selective_block_supernodes,
    selective_blocks_from_groups,
    validate_groups,
)
from repro.fem.contact import (
    add_penalty,
    assemble_penalty_groups,
    constraint_matrix,
    penalty_coo_blocks,
)


class TestPenaltyStencil:
    def test_fig24_pair_stencil(self):
        """Two-node group: diag +lambda, off-diag -lambda (Fig. 24)."""
        k = assemble_penalty_groups([np.array([0, 1])], 10.0, 2).toarray()
        assert np.allclose(k[0:3, 0:3], 10.0 * np.eye(3))
        assert np.allclose(k[0:3, 3:6], -10.0 * np.eye(3))

    def test_fig24_triple_stencil(self):
        """Three-node group: diag 2*lambda, each off-diag -lambda."""
        k = assemble_penalty_groups([np.arange(3)], 5.0, 3).toarray()
        assert np.allclose(k[0:3, 0:3], 10.0 * np.eye(3))
        assert np.allclose(k[0:3, 3:6], -5.0 * np.eye(3))
        assert np.allclose(k[3:6, 6:9], -5.0 * np.eye(3))

    def test_positive_semidefinite(self):
        k = assemble_penalty_groups([np.array([0, 2]), np.array([1, 3, 4])], 7.0, 5).toarray()
        vals = np.linalg.eigvalsh(k)
        assert vals.min() > -1e-12

    def test_kernel_is_rigid_group_motion(self):
        """Equal displacement of all group members costs no energy."""
        k = assemble_penalty_groups([np.arange(3)], 3.0, 4).toarray()
        u = np.zeros(12)
        u[0:9:3] = 1.0  # same x-displacement for nodes 0,1,2
        assert np.allclose(k @ u, 0.0)

    def test_negative_penalty_rejected(self):
        with pytest.raises(ValueError):
            penalty_coo_blocks([np.array([0, 1])], -1.0, 2)

    def test_empty_groups(self):
        rows, cols, blocks = penalty_coo_blocks([], 1.0, 3)
        assert rows.size == 0 and blocks.shape == (0, 3, 3)

    def test_add_penalty_preserves_base(self, block_mesh_small):
        from repro.fem.assembly import assemble_stiffness

        k = assemble_stiffness(block_mesh_small)
        k2 = add_penalty(k, block_mesh_small.contact_groups, 0.0)
        assert np.allclose(k2.to_csr().toarray(), k.to_csr().toarray())

    def test_ctc_equals_laplacian_kernel(self):
        """C^T C has the same kernel as the Fig. 24 penalty matrix."""
        groups = [np.arange(3)]
        c = constraint_matrix(groups, 3)
        ctc = (c.T @ c).toarray()
        pen = assemble_penalty_groups(groups, 1.0, 3).toarray()
        # same kernel: vectors with equal per-component values
        u = np.tile(np.array([1.0, 2.0, 3.0]), 3)
        assert np.allclose(ctc @ u, 0.0)
        assert np.allclose(pen @ u, 0.0)
        # and same rank
        assert np.linalg.matrix_rank(ctc) == np.linalg.matrix_rank(pen)


class TestGroupValidation:
    def test_overlap_rejected(self):
        with pytest.raises(ValueError, match="overlap"):
            validate_groups([np.array([0, 1]), np.array([1, 2])], 3)

    def test_singleton_rejected(self):
        with pytest.raises(ValueError, match="fewer"):
            validate_groups([np.array([0])], 2)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            validate_groups([np.array([0, 5])], 3)


class TestSelectiveBlocks:
    def test_partition_complete(self):
        blocks = selective_blocks_from_groups([np.array([1, 3])], 5)
        flat = np.sort(np.concatenate(blocks))
        assert flat.tolist() == [0, 1, 2, 3, 4]

    def test_groups_first_then_singletons(self):
        blocks = selective_blocks_from_groups([np.array([1, 3])], 5)
        assert blocks[0].tolist() == [1, 3]
        assert all(b.size == 1 for b in blocks[1:])

    def test_supernodes_expand_dofs(self):
        sn = selective_block_supernodes([np.array([0, 2])], 3, b=3)
        assert sn[0].tolist() == [0, 1, 2, 6, 7, 8]
        assert sn[1].tolist() == [3, 4, 5]


class TestDetectGroups:
    def test_finds_coincident(self):
        coords = np.array([[0, 0, 0], [1, 0, 0], [0, 0, 0], [1, 0, 0], [2, 0, 0]], dtype=float)
        groups = detect_contact_groups(coords)
        assert [g.tolist() for g in groups] == [[0, 2], [1, 3]]

    def test_tolerance(self):
        coords = np.array([[0, 0, 0], [0, 0, 1e-12]], dtype=float)
        assert len(detect_contact_groups(coords, tol=1e-9)) == 1
        assert len(detect_contact_groups(coords, tol=1e-15)) == 0

    def test_triple_coincidence(self):
        coords = np.zeros((3, 3))
        groups = detect_contact_groups(coords)
        assert len(groups) == 1 and groups[0].size == 3

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            detect_contact_groups(np.zeros(5))
