import numpy as np
import pytest

from repro.fem.generators import simple_block_model
from repro.fem.model import build_contact_problem
from repro.perfmodel import (
    EARTH_SIMULATOR,
    SR2201,
    StructuredSpec,
    census_from_factorization,
    estimate_iteration_time,
    gflops,
    sweep_nodes,
)
from repro.perfmodel.kernels import SolverOpCensus, VectorWork
from repro.precond import sb_bic0


class TestVectorPipeline:
    def test_rate_monotone_in_loop_length(self):
        pe = EARTH_SIMULATOR.pe
        assert pe.rate(10) < pe.rate(100) < pe.rate(10000)

    def test_rate_bounded_by_rinf(self):
        pe = EARTH_SIMULATOR.pe
        assert pe.rate(1e9) <= pe.r_inf

    def test_scalar_fallback(self):
        pe = EARTH_SIMULATOR.pe
        assert pe.rate(0) == pe.scalar_flops

    def test_time_includes_startup(self):
        pe = EARTH_SIMULATOR.pe
        one = pe.time_for_loops(np.array([100.0]), 2.0)
        two = pe.time_for_loops(np.array([50.0, 50.0]), 2.0)
        assert two > one  # same work, more loop startups

    def test_empty_loops_zero(self):
        assert EARTH_SIMULATOR.pe.time_for_loops(np.array([]), 2.0) == 0.0


class TestInterconnect:
    def test_message_time(self):
        ic = EARTH_SIMULATOR.inter_node
        assert ic.message_time(0) == ic.latency_seconds
        assert ic.message_time(1e9) > ic.latency_seconds

    def test_allreduce_grows_with_ranks(self):
        ic = EARTH_SIMULATOR.inter_node
        assert ic.allreduce_time(2) < ic.allreduce_time(1024)
        assert ic.allreduce_time(1) == 0.0


class TestStructuredSpec:
    def test_flops_scale_with_size(self):
        c1 = StructuredSpec(16, 16, 16).census()
        c2 = StructuredSpec(32, 32, 32).census()
        ratio = c2.flops_per_iteration / c1.flops_per_iteration
        assert 7.0 < ratio < 9.1  # ~8x the nodes

    def test_flops_per_node_about_1000_per_point(self):
        """Sanity: ~1,000 flops per mesh node per CG iteration (27-point
        stencil block matvec + substitution + BLAS1)."""
        spec = StructuredSpec(32, 32, 32)
        per_node = spec.census().flops_per_iteration / spec.n_nodes
        assert 800 < per_node < 1300

    def test_message_sizes_are_faces(self):
        c = StructuredSpec(16, 16, 16).census()
        assert c.neighbor_message_bytes.size == 6
        assert np.allclose(c.neighbor_message_bytes, 16 * 16 * 24.0)

    def test_more_colors_shorter_loops(self):
        few = StructuredSpec(32, 32, 32, ncolors=10).census()
        many = StructuredSpec(32, 32, 32, ncolors=100).census()
        assert many.phases[0].loop_lengths[0] < few.phases[0].loop_lengths[0]


class TestCensusScaling:
    def test_scaled_flops_linear(self):
        c = StructuredSpec(16, 16, 16).census()
        s = c.scaled(8.0)
        assert np.isclose(s.flops_per_iteration, 8.0 * c.flops_per_iteration)

    def test_scaled_messages_surface_law(self):
        c = StructuredSpec(16, 16, 16).census()
        s = c.scaled(8.0)
        assert np.allclose(s.neighbor_message_bytes, 4.0 * c.neighbor_message_bytes)

    def test_invalid_factor(self):
        c = StructuredSpec(8, 8, 8).census()
        with pytest.raises(ValueError):
            c.scaled(0.0)


class TestIterationTime:
    def test_single_node_hybrid_has_no_mpi(self):
        c = StructuredSpec(32, 32, 32).census()
        t = estimate_iteration_time(c, EARTH_SIMULATOR, "hybrid", 1)
        assert t.comm_seconds == 0.0
        assert t.openmp_seconds > 0.0

    def test_flat_never_pays_openmp(self):
        c = StructuredSpec(32, 32, 32).census()
        t = estimate_iteration_time(c, EARTH_SIMULATOR, "flat", 4)
        assert t.openmp_seconds == 0.0
        assert t.comm_seconds > 0.0

    def test_work_ratio_bounded(self):
        c = StructuredSpec(32, 32, 32).census()
        for model in ("hybrid", "flat"):
            for nodes in (1, 16, 128):
                t = estimate_iteration_time(c, EARTH_SIMULATOR, model, nodes)
                assert 0.0 < t.work_ratio_percent <= 100.0

    def test_degenerate_census_reports_zero_not_division_error(self):
        """Regression: a census with no phases (or all-zero loop
        lengths) has zero elapsed time; ``work_ratio_percent`` and
        ``gflops_total`` used to raise ZeroDivisionError on it.  The
        policy layer's cost probes can legitimately produce such a
        census, so the degenerate case must report 0.0."""
        empty = SolverOpCensus(ndof_node=0, phases=[])
        t = estimate_iteration_time(empty, EARTH_SIMULATOR, "hybrid", 1)
        assert t.total_seconds == 0.0
        assert t.work_ratio_percent == 0.0
        assert t.gflops_total() == 0.0
        # all-zero loop lengths behave identically
        zeros = SolverOpCensus(
            ndof_node=0,
            phases=[VectorWork(np.zeros(3), 2.0)],
        )
        tz = estimate_iteration_time(zeros, EARTH_SIMULATOR, "hybrid", 1)
        assert tz.work_ratio_percent == 0.0
        assert tz.gflops_total() == 0.0

    def test_unknown_model_rejected(self):
        c = StructuredSpec(8, 8, 8).census()
        with pytest.raises(ValueError):
            estimate_iteration_time(c, EARTH_SIMULATOR, "both", 1)

    def test_gflops_helper_consistent(self):
        c = StructuredSpec(32, 32, 32).census()
        t = estimate_iteration_time(c, EARTH_SIMULATOR, "hybrid", 2)
        assert np.isclose(gflops(c, EARTH_SIMULATOR, "hybrid", 2), t.gflops_total())

    def test_sweep_returns_per_count(self):
        c = StructuredSpec(16, 16, 16).census()
        out = sweep_nodes(c, EARTH_SIMULATOR, "hybrid", [1, 2, 4])
        assert len(out) == 3
        assert out[2].n_nodes == 4


class TestPaperAnchors:
    def test_pdjds_large_problem_near_paper(self):
        """Fig. 15 anchor: ~22.7 GFLOPS at 6.3M DOF on one node."""
        g = gflops(StructuredSpec(128, 128, 128, ncolors=99).census(), EARTH_SIMULATOR, "hybrid", 1)
        assert 18.0 < g < 26.0

    def test_gflops_increase_with_problem_size(self):
        gs = [
            gflops(StructuredSpec(n, n, n, ncolors=99).census(), EARTH_SIMULATOR, "hybrid", 1)
            for n in (16, 64, 128)
        ]
        assert gs[0] < gs[1] < gs[2]

    def test_hybrid_beats_flat_at_scale_small_problems(self):
        c = StructuredSpec(64, 64, 64, ncolors=99).census()
        hy = gflops(c, EARTH_SIMULATOR, "hybrid", 160)
        fl = gflops(c, EARTH_SIMULATOR, "flat", 160)
        assert hy > fl

    def test_flat_competitive_on_one_node(self):
        c = StructuredSpec(128, 128, 128, ncolors=99).census()
        hy = gflops(c, EARTH_SIMULATOR, "hybrid", 1)
        fl = gflops(c, EARTH_SIMULATOR, "flat", 1)
        assert fl >= 0.95 * hy

    def test_sr2201_much_slower_than_es(self):
        c = StructuredSpec(16, 16, 16, npe=1).census()
        t_es = estimate_iteration_time(c, EARTH_SIMULATOR, "flat", 1)
        t_sr = estimate_iteration_time(c, SR2201, "flat", 1)
        assert t_sr.total_seconds > 5.0 * t_es.total_seconds


class TestMeasuredCensus:
    @pytest.fixture(scope="class")
    def measured(self):
        mesh = simple_block_model(3, 3, 2, 3, 3)
        prob = build_contact_problem(mesh, penalty=1e6)
        m = sb_bic0(prob.a, prob.groups, ncolors=4)
        return prob, m, census_from_factorization(prob.a_bcsr, m, npe=8)

    def test_flops_reasonable(self, measured):
        prob, m, census = measured
        per_node = census.flops_per_iteration / prob.mesh.n_nodes
        assert 300 < per_node < 3000

    def test_barriers_track_schedule(self, measured):
        _, m, census = measured
        assert census.openmp_barriers == 2 * len(m.schedule) + 6

    def test_phases_nonempty(self, measured):
        _, _, census = measured
        assert len(census.phases) == 4
        assert all(p.loop_lengths.size > 0 for p in census.phases)

    def test_estimate_runs(self, measured):
        _, _, census = measured
        t = estimate_iteration_time(census, EARTH_SIMULATOR, "hybrid", 1)
        assert t.total_seconds > 0
