"""Unified observability layer: spans, metrics, exporters, agreement.

Three layers of coverage:

- unit: ``Tracer``/``Span`` nesting and thread behavior,
  ``MetricsRegistry`` semantics, the disabled-path null session;
- exporters: JSON-lines records, Chrome trace-event well-formedness
  (matched ``B``/``E`` per thread lane — the CI smoke contract), the
  terminal summary table;
- agreement: a traced solve must tell the same story as the legacy
  counters (``CommLog``, ``setup_counters()``) it subsumes.
"""

import json
import threading

import numpy as np
import pytest

from repro import obs
from repro.fem.assembly import assemble_stiffness
from repro.fem.bc import all_dofs, apply_dirichlet, component_dofs, surface_load
from repro.fem.generators import simple_block_model
from repro.fem.nonlinear import solve_nonlinear_contact
from repro.obs.core import Tracer
from repro.obs.export import chrome_trace_events, export_jsonl, summary_table
from repro.obs.metrics import MetricsRegistry
from repro.parallel import DistributedSystem, parallel_cg, partition_nodes_rcb
from repro.precond import bic, sb_bic0
from repro.precond.icfact import setup_counters
from repro.solvers.cg import cg_solve


@pytest.fixture(autouse=True)
def _no_leaked_session():
    """Every test must leave observability disabled."""
    yield
    assert obs.session() is None, "test leaked an active obs session"
    obs.disable()


class TestTracer:
    def test_nesting_builds_tree(self):
        tr = Tracer()
        with tr.span("outer") as outer:
            with tr.span("inner") as inner:
                pass
        assert tr.roots == [outer]
        assert outer.children == [inner]
        assert inner.parent_id == outer.span_id
        assert inner.t_end is not None and outer.t_end is not None
        assert outer.t_end >= inner.t_end >= inner.t_start >= outer.t_start

    def test_exception_unwinds_and_closes(self):
        tr = Tracer()
        with pytest.raises(RuntimeError):
            with tr.span("outer"):
                with tr.span("inner"):
                    raise RuntimeError("boom")
        assert len(tr.roots) == 1
        for sp in tr.iter_spans():
            assert sp.t_end is not None
        # and the stack is clean: a new span is a fresh root
        with tr.span("after"):
            pass
        assert [r.name for r in tr.roots] == ["outer", "after"]

    def test_event_attaches_to_current_span(self):
        tr = Tracer()
        with tr.span("solve"):
            tr.event("iteration", it=1, relres=0.5)
        (root,) = tr.roots
        (ev,) = root.children
        assert ev.kind == "event"
        assert ev.t_end == ev.t_start
        assert ev.attrs == {"it": 1, "relres": 0.5}

    def test_record_span_backdates(self):
        tr = Tracer()
        with tr.span("setup"):
            tr.record_span("symbolic", 1.25, ndof=30)
        (sym,) = tr.find("symbolic")
        assert sym.duration == pytest.approx(1.25)
        assert sym.parent_id == tr.roots[0].span_id

    def test_set_attrs_chainable(self):
        tr = Tracer()
        with tr.span("s") as sp:
            assert sp.set(bytes=8).set(messages=1) is sp
        assert sp.attrs == {"bytes": 8, "messages": 1}

    def test_aggregation_helpers(self):
        tr = Tracer()
        for _ in range(3):
            with tr.span("halo"):
                pass
        assert tr.count("halo") == 3
        assert tr.total_seconds("halo") >= 0.0
        assert len(tr) == 3

    def test_threads_get_independent_stacks(self):
        tr = Tracer()
        ready = threading.Barrier(2)

        def work(label):
            ready.wait()
            with tr.span(label):
                with tr.span(f"{label}.child"):
                    pass

        threads = [
            threading.Thread(target=work, args=(f"t{i}",)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(r.name for r in tr.roots) == ["t0", "t1"]
        tids = {r.tid for r in tr.roots}
        assert len(tids) == 2
        for r in tr.roots:
            assert [c.name for c in r.children] == [f"{r.name}.child"]


class TestMetricsRegistry:
    def test_counters_accumulate_by_label(self):
        m = MetricsRegistry()
        m.inc("cg.iterations", precond="BIC(0)")
        m.inc("cg.iterations", 4, precond="BIC(0)")
        m.inc("cg.iterations", precond="SB-BIC(0)")
        assert m.get("cg.iterations", precond="BIC(0)") == 5
        assert m.get("cg.iterations", precond="SB-BIC(0)") == 1
        assert m.get("cg.iterations", precond="absent") == 0.0
        assert m.total("cg.iterations") == 6

    def test_gauge_holds_latest(self):
        m = MetricsRegistry()
        m.set("penalty", 1e6)
        m.set("penalty", 1e5)
        assert m.get("penalty") == 1e5

    def test_histogram_summary(self):
        m = MetricsRegistry()
        for v in (1.0, 3.0, 2.0):
            m.observe("bytes", v)
        h = m.histogram("bytes")
        assert h["count"] == 3
        assert h["total"] == 6.0
        assert h["min"] == 1.0 and h["max"] == 3.0
        assert h["mean"] == 2.0
        assert m.histogram("absent") is None

    def test_snapshot_is_json_safe(self):
        m = MetricsRegistry()
        m.inc("c", rank=3)
        m.set("g", 2.5)
        m.observe("h", 1.0, kind="nan")
        snap = json.loads(json.dumps(m.snapshot()))
        assert snap["counters"]["c"] == [{"labels": {"rank": "3"}, "value": 1.0}]
        assert snap["gauges"]["g"][0]["value"] == 2.5
        assert snap["histograms"]["h"][0]["value"]["count"] == 1
        assert m.names() == ["c", "g", "h"]


class TestSessionHelpers:
    def test_disabled_helpers_are_noops(self):
        assert obs.session() is None
        sp = obs.span("anything", k=1)
        assert sp is obs.span("other")  # the shared null-span singleton
        with sp as inner:
            assert inner.set(x=1) is inner
        obs.event("e")
        obs.record_span("r", 1.0)
        obs.metric_inc("m")
        obs.metric_set("m", 1.0)
        obs.metric_observe("m", 1.0)

    def test_observe_scopes_and_restores(self):
        outer = obs.enable()
        try:
            with obs.observe() as inner:
                assert obs.session() is inner
                assert inner is not outer
            assert obs.session() is outer
        finally:
            obs.disable()

    def test_observe_restores_on_exception(self):
        with pytest.raises(ValueError):
            with obs.observe():
                raise ValueError
        assert obs.session() is None

    def test_helpers_route_to_active_session(self):
        with obs.observe() as sess:
            with obs.span("phase", k=1):
                obs.event("tick")
            obs.metric_inc("n", 2)
        assert sess.tracer.count("phase") == 1
        assert sess.tracer.count("tick") == 1
        assert sess.metrics.get("n") == 2


def _assert_chrome_well_formed(doc):
    """Every thread lane must have stack-matched B/E pairs."""
    stacks: dict[int, list[str]] = {}
    n_pairs = 0
    for ev in doc["traceEvents"]:
        assert ev["ph"] in ("B", "E", "i")
        st = stacks.setdefault(ev["tid"], [])
        if ev["ph"] == "B":
            st.append(ev["name"])
        elif ev["ph"] == "E":
            assert st, f"E event {ev['name']} with no open B"
            assert st.pop() == ev["name"]
            n_pairs += 1
    for tid, st in stacks.items():
        assert st == [], f"unclosed B events in lane {tid}: {st}"
    return n_pairs


class TestExporters:
    def _session_with_data(self):
        with obs.observe() as sess:
            with obs.span("solve", ndof=12):
                with obs.span("iterations"):
                    obs.event("iteration", it=1)
            obs.metric_inc("cg.iterations", 7, precond="BIC(0)")
        return sess

    def test_jsonl_roundtrip(self, tmp_path):
        sess = self._session_with_data()
        path = export_jsonl(sess.tracer, tmp_path / "t.jsonl", sess.metrics)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        kinds = [r["kind"] for r in records]
        assert kinds == ["span", "span", "event", "metrics"]
        by_name = {r["name"]: r for r in records[:-1]}
        assert by_name["iterations"]["parent_id"] == by_name["solve"]["span_id"]
        assert records[-1]["counters"]["cg.iterations"][0]["value"] == 7

    def test_chrome_trace_matched_pairs(self):
        sess = self._session_with_data()
        doc = chrome_trace_events(sess.tracer, sess.metrics)
        n_pairs = _assert_chrome_well_formed(doc)
        assert n_pairs == 2  # solve + iterations
        assert sum(1 for e in doc["traceEvents"] if e["ph"] == "i") == 1
        assert doc["otherData"]["metrics"]["counters"]["cg.iterations"]

    def test_export_chrome_trace_creates_parent_dirs(self, tmp_path):
        sess = self._session_with_data()
        path = obs.export_chrome_trace(
            sess.tracer, tmp_path / "deep" / "t.json", sess.metrics
        )
        doc = json.loads(path.read_text())
        _assert_chrome_well_formed(doc)

    def test_summary_table_lists_spans_and_metrics(self):
        sess = self._session_with_data()
        text = summary_table(sess.tracer, sess.metrics)
        assert "solve" in text and "iterations" in text
        assert "cg.iterations" in text and "precond=BIC(0)" in text
        assert summary_table(None, None) == "(empty trace)"


class TestTracedSolveAgreement:
    """The unified trace must agree with the legacy counters it subsumes."""

    def test_cg_solve_spans_and_metrics(self, block_problem_small):
        p = block_problem_small
        before = setup_counters()
        with obs.observe() as sess:
            m = sb_bic0(p.a, p.groups)
            res = cg_solve(p.a, p.b, m)
        assert res.converged
        after = setup_counters()

        # spans: one solve, one sweep, one symbolic + one numeric setup
        assert sess.tracer.count("cg_solve") == 1
        assert sess.tracer.count("cg_iterations") == 1
        assert sess.tracer.count("ic_symbolic") == 1
        assert sess.tracer.count("ic_numeric") == 1
        # per-iteration events mirror the iteration count exactly
        assert sess.tracer.count("cg.iteration") == res.iterations
        assert sess.metrics.total("cg.iterations") == res.iterations
        # registry mirrors the legacy process-wide setup census deltas
        assert sess.metrics.total("setup.symbolic") == (
            after["symbolic"] - before["symbolic"]
        )
        assert sess.metrics.total("setup.numeric") == (
            after["numeric"] - before["numeric"]
        )
        # backdated spans carry the legacy wall-clock bookkeeping verbatim
        (sym,) = sess.tracer.find("ic_symbolic")
        assert sym.duration == pytest.approx(m.symbolic.build_seconds)
        (num,) = sess.tracer.find("ic_numeric")
        assert num.duration == pytest.approx(m.numeric_seconds)
        assert sess.metrics.get("cg.solves", precond=m.name, converged=True) == 1

    def test_parallel_cg_halo_census_matches_commlog(self, block_problem_small):
        p = block_problem_small
        part = partition_nodes_rcb(p.mesh.coords, 3)

        def factory(sub, nodes):
            return bic(sub, fill_level=0)

        with obs.observe() as sess:
            system = DistributedSystem.from_global(p.a, p.b, part, factory)
            res = parallel_cg(system)
        assert res.converged
        log = system.comm.log

        halos = sess.tracer.find("halo_exchange")
        assert len(halos) == sess.metrics.total("comm.exchanges")
        assert sum(s.attrs["messages"] for s in halos) == log.n_messages
        assert sum(s.attrs["bytes"] for s in halos) == log.bytes_sent
        assert sess.metrics.total("comm.messages") == log.n_messages
        assert sess.metrics.total("comm.bytes") == log.bytes_sent
        assert sess.metrics.total("comm.allreduces") == log.n_allreduce
        hist = sess.metrics.histogram("comm.exchange_bytes")
        assert hist["count"] == len(halos)
        assert hist["total"] == log.bytes_sent
        # halo exchanges nest under the solve span
        (root,) = sess.tracer.find("parallel_cg")
        assert len(root.find("halo_exchange")) == len(halos)
        assert sess.tracer.count("cg.iteration") == len(res.history) - 1

    def test_nonlinear_contact_single_nested_trace(self):
        mesh = simple_block_model(2, 2, 2, 2, 2)
        with obs.observe() as sess:
            k = assemble_stiffness(mesh)
            f = surface_load(
                mesh, mesh.node_sets["zmax"], np.array([0.0, 0.0, -1.0])
            )
            fixed = np.unique(
                np.concatenate(
                    [
                        all_dofs(mesh.node_sets["zmin"]),
                        component_dofs(mesh.node_sets["xmin"], 0),
                        component_dofs(mesh.node_sets["ymin"], 1),
                    ]
                )
            )
            a_free, b = apply_dirichlet(k.to_csr(), f, fixed)
            res = solve_nonlinear_contact(
                a_free,
                b,
                mesh.contact_groups,
                mesh.n_nodes,
                penalty=1e4,
                precond_factory=lambda a: bic(a, fill_level=0),
            )
        assert res.converged

        # one trace carries assembly, both setup phases and the CG sweeps
        assert sess.tracer.count("assembly") == 1
        assert sess.tracer.count("ic_symbolic") == 1
        assert sess.tracer.count("ic_numeric") >= 1
        (top,) = sess.tracer.find("solve_nonlinear_contact")
        cycles = top.find("alm_cycle")
        assert len(cycles) == res.cycles
        assert sess.metrics.total("alm.cycles") == res.cycles
        # every cycle's inner solve nests inside its cycle span
        assert len(top.find("cg_solve")) == res.cycles
        assert len(top.find("cg_iterations")) == res.cycles
        assert top.attrs["converged"] is True
        # per-iteration events sum to the recorded totals
        assert sess.tracer.count("cg.iteration") == res.total_cg_iterations
        assert sess.metrics.total("cg.iterations") == res.total_cg_iterations
        # and the whole thing exports as a well-formed Chrome trace
        _assert_chrome_well_formed(chrome_trace_events(sess.tracer))

    def test_quick_sweep_trace_is_valid_chrome_json(self, tmp_path):
        """CI smoke contract: the --trace file of a quick sweep run is
        valid JSON whose B/E events are stack-matched."""
        import sys
        from pathlib import Path

        sys.path.insert(
            0, str(Path(__file__).resolve().parent.parent / "scripts")
        )
        import fault_sweep

        out = tmp_path / "fault_sweep.trace.json"
        rc = fault_sweep.main(["--quick", "--trace", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        n_pairs = _assert_chrome_well_formed(doc)
        assert n_pairs > 0
        assert doc["otherData"]["metrics"]["counters"]["comm.exchanges"]
