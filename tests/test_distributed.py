import numpy as np
import pytest

from repro.parallel import (
    DistributedSystem,
    LockstepComm,
    contact_aware_partition,
    parallel_cg,
    partition_nodes_rcb,
)
from repro.parallel.contact_partition import partition_quality
from repro.parallel.partition import build_domains
from repro.precond import LocalizedPreconditioner, bic, sb_bic0
from repro.precond.localized import restrict_groups
from repro.solvers.cg import cg_solve


class TestContactAwarePartition:
    def test_groups_never_cut(self, block_mesh_small):
        part = contact_aware_partition(
            block_mesh_small.coords, block_mesh_small.contact_groups, 4
        )
        q = partition_quality(part, block_mesh_small.contact_groups)
        assert q["cut_groups"] == 0

    def test_load_balanced(self, block_mesh_small):
        part = contact_aware_partition(
            block_mesh_small.coords, block_mesh_small.contact_groups, 4
        )
        q = partition_quality(part, block_mesh_small.contact_groups)
        assert q["imbalance_percent"] < 10.0

    def test_rcb_cuts_groups(self, block_mesh_small):
        """The naive partitioner must cut groups (that's Table 3's point)."""
        part = partition_nodes_rcb(block_mesh_small.coords, 4)
        q = partition_quality(part, block_mesh_small.contact_groups)
        assert q["cut_groups"] > 0

    def test_all_domains_populated(self, swj_mesh_small):
        part = contact_aware_partition(
            swj_mesh_small.coords, swj_mesh_small.contact_groups, 6
        )
        assert np.bincount(part).min() > 0


class TestLockstepComm:
    def test_exchange_moves_boundary_values(self, block_problem_small):
        mesh = block_problem_small.mesh
        part = partition_nodes_rcb(mesh.coords, 3)
        domains = build_domains(block_problem_small.a, part)
        comm = LockstepComm(domains)
        rng = np.random.default_rng(0)
        x = rng.normal(size=block_problem_small.ndof)
        vectors = []
        for dom in domains:
            v = np.zeros(dom.n_local * 3)
            rows = (dom.internal_nodes[:, None] * 3 + np.arange(3)).reshape(-1)
            v[: dom.n_internal * 3] = x[rows]
            vectors.append(v)
        comm.exchange_external(vectors)
        for dom, v in zip(domains, vectors):
            ext_rows = (dom.external_nodes[:, None] * 3 + np.arange(3)).reshape(-1)
            assert np.allclose(v[dom.n_internal * 3 :], x[ext_rows])

    def test_comm_log_counts(self, block_problem_small):
        part = partition_nodes_rcb(block_problem_small.mesh.coords, 2)
        domains = build_domains(block_problem_small.a, part)
        comm = LockstepComm(domains)
        vectors = [np.zeros(d.n_local * 3) for d in domains]
        comm.exchange_external(vectors)
        assert comm.log.n_messages == 2  # one each way
        assert comm.log.bytes_sent > 0
        comm.allreduce_sum([1.0, 2.0])
        assert comm.log.n_allreduce == 1

    def test_allreduce_sum(self, block_problem_small):
        part = partition_nodes_rcb(block_problem_small.mesh.coords, 2)
        comm = LockstepComm(build_domains(block_problem_small.a, part))
        assert comm.allreduce_sum([1.5, 2.5]) == 4.0

    def test_wrong_vector_count_rejected(self, block_problem_small):
        part = partition_nodes_rcb(block_problem_small.mesh.coords, 2)
        comm = LockstepComm(build_domains(block_problem_small.a, part))
        with pytest.raises(ValueError):
            comm.exchange_external([np.zeros(3)])

    @staticmethod
    def _make_domain(rank, internal, external, send, recv):
        import scipy.sparse as sp

        from repro.parallel.partition import LocalDomain

        internal = np.asarray(internal, dtype=np.int64)
        external = np.asarray(external, dtype=np.int64)
        nloc = internal.size + external.size
        return LocalDomain(
            rank=rank,
            internal_nodes=internal,
            external_nodes=external,
            a_local=sp.csr_matrix((internal.size * 3, nloc * 3)),
            send_tables={k: np.asarray(v, dtype=np.int64) for k, v in send.items()},
            recv_tables={k: np.asarray(v, dtype=np.int64) for k, v in recv.items()},
        )

    def _domains_with_isolated_rank(self):
        # dom0 <-> dom1 share one node each way; dom2 has no neighbors
        d0 = self._make_domain(0, [0, 1], [2], {1: [0]}, {1: [2]})
        d1 = self._make_domain(1, [2, 3], [0], {0: [0]}, {0: [2]})
        d2 = self._make_domain(2, [4], [], {}, {})
        return [d0, d1, d2]

    def test_isolated_rank_exchange_and_mismatch(self):
        comm = LockstepComm(self._domains_with_isolated_rank())
        v0 = np.arange(9, dtype=np.float64)
        v1 = 10.0 + np.arange(9)
        v2 = np.array([100.0, 101.0, 102.0])
        vectors = [v0, v1, v2]
        comm.exchange_external(vectors)
        # ghosts now equal the owners' boundary values
        assert np.array_equal(v0[6:9], v1[0:3])
        assert np.array_equal(v1[6:9], v0[0:3])
        # the isolated rank is untouched and contributes no mismatch
        assert np.array_equal(v2, [100.0, 101.0, 102.0])
        assert comm.halo_mismatch(vectors) == 0.0
        assert comm.log.n_messages == 2
        assert comm.log.bytes_sent == 48  # 2 messages x 3 DOF x 8 bytes

    def test_isolated_rank_mismatch_detects_staleness(self):
        comm = LockstepComm(self._domains_with_isolated_rank())
        vectors = [np.zeros(9), np.zeros(9), np.zeros(3)]
        comm.exchange_external(vectors)
        vectors[0][6] += 0.5  # stale ghost on dom0
        assert comm.halo_mismatch(vectors) == pytest.approx(0.5)

    def test_zero_length_send_tables(self):
        # tables exist but carry no nodes: the exchange must be a clean
        # no-op (zero-byte messages, no indexing error), and the
        # mismatch probe must cope with empty halos
        d0 = self._make_domain(0, [0], [], {1: []}, {1: []})
        d1 = self._make_domain(1, [1], [], {0: []}, {0: []})
        comm = LockstepComm([d0, d1])
        vectors = [np.array([1.0, 2.0, 3.0]), np.array([4.0, 5.0, 6.0])]
        before = [v.copy() for v in vectors]
        comm.exchange_external(vectors)
        assert np.array_equal(vectors[0], before[0])
        assert np.array_equal(vectors[1], before[1])
        assert comm.log.n_messages == 2
        assert comm.log.bytes_sent == 0
        assert list(comm.log.per_exchange_bytes) == [0]
        assert comm.halo_mismatch(vectors) == 0.0

    def test_per_exchange_bytes_retention_bounded(self):
        from repro.parallel.comm import PER_EXCHANGE_RETENTION

        d0 = self._make_domain(0, [0], [], {1: []}, {1: []})
        d1 = self._make_domain(1, [1], [], {0: []}, {0: []})
        comm = LockstepComm([d0, d1])
        vectors = [np.zeros(3), np.zeros(3)]
        for _ in range(PER_EXCHANGE_RETENTION + 10):
            comm.exchange_external(vectors)
        # aggregates keep the full census; the per-exchange series is a
        # bounded window (regression: it used to grow without bound)
        assert comm.log.n_messages == 2 * (PER_EXCHANGE_RETENTION + 10)
        assert len(comm.log.per_exchange_bytes) == PER_EXCHANGE_RETENTION


class TestParallelCG:
    def test_matches_sequential_localized(self, block_problem_small):
        """The lockstep distributed CG must agree with the sequential CG
        preconditioned by the equivalent LocalizedPreconditioner."""
        p = block_problem_small
        part = contact_aware_partition(p.mesh.coords, p.groups, 4)

        def factory(sub, nodes):
            return sb_bic0(sub, restrict_groups(p.groups, nodes, p.mesh.n_nodes))

        system = DistributedSystem.from_global(p.a, p.b, part, factory)
        res_par = parallel_cg(system)

        lp = LocalizedPreconditioner(p.a, part, factory)
        res_seq = cg_solve(p.a, p.b, lp)

        assert res_par.converged and res_seq.converged
        assert abs(res_par.iterations - res_seq.iterations) <= 1
        assert np.allclose(res_par.x, res_seq.x, atol=1e-6)

    def test_solution_correct(self, block_problem_small, block_reference):
        p = block_problem_small
        part = partition_nodes_rcb(p.mesh.coords, 3)
        system = DistributedSystem.from_global(
            p.a, p.b, part, lambda sub, nodes: bic(sub, fill_level=0)
        )
        res = parallel_cg(system)
        assert res.converged
        err = np.linalg.norm(res.x - block_reference) / np.linalg.norm(block_reference)
        assert err < 1e-6

    def test_comm_volume_recorded(self, block_problem_small):
        p = block_problem_small
        part = partition_nodes_rcb(p.mesh.coords, 4)
        system = DistributedSystem.from_global(
            p.a, p.b, part, lambda sub, nodes: bic(sub, fill_level=0)
        )
        res = parallel_cg(system)
        log = system.comm_log
        # one exchange per matvec (= iterations)
        assert log.per_exchange_bytes and len(log.per_exchange_bytes) >= res.iterations
        assert log.n_allreduce >= 2 * res.iterations

    def test_fused_allreduce_count(self, block_problem_small):
        """r.r and r.z ride one vector allreduce: 2 per iteration (p.q +
        the fused pair) plus the single initial fused reduction."""
        p = block_problem_small
        part = partition_nodes_rcb(p.mesh.coords, 4)
        system = DistributedSystem.from_global(
            p.a, p.b, part, lambda sub, nodes: bic(sub, fill_level=0)
        )
        res = parallel_cg(system)
        assert res.converged
        assert system.comm_log.n_allreduce == 2 * res.iterations + 1

    def test_fused_allreduce_matches_sequential_iterates(self, block_problem_small):
        """The fused-reduction CG must track the sequential localized CG
        residual history iterate for iterate, not just at convergence."""
        p = block_problem_small
        part = contact_aware_partition(p.mesh.coords, p.groups, 4)

        def factory(sub, nodes):
            return sb_bic0(sub, restrict_groups(p.groups, nodes, p.mesh.n_nodes))

        system = DistributedSystem.from_global(p.a, p.b, part, factory)
        res_par = parallel_cg(system)
        lp = LocalizedPreconditioner(p.a, part, factory)
        res_seq = cg_solve(p.a, p.b, lp)
        k = min(res_par.history.size, res_seq.history.size)
        assert k >= res_par.iterations  # same iteration count up to the tail
        assert np.allclose(res_par.history[:k], res_seq.history[:k], rtol=1e-6)

    def test_iterations_grow_with_domains(self, block_problem_stiff):
        """Localization weakens the preconditioner (Table 1 behaviour)."""
        p = block_problem_stiff
        iters = []
        for nd in (1, 8):
            if nd == 1:
                m = bic(p.a, fill_level=0)
                iters.append(cg_solve(p.a, p.b, m, max_iter=20000).iterations)
            else:
                part = partition_nodes_rcb(p.mesh.coords, nd)
                system = DistributedSystem.from_global(
                    p.a, p.b, part, lambda sub, nodes: bic(sub, fill_level=0)
                )
                iters.append(parallel_cg(system, max_iter=20000).iterations)
        assert iters[1] >= iters[0]

    def test_zero_rhs(self, block_problem_small):
        p = block_problem_small
        part = partition_nodes_rcb(p.mesh.coords, 2)
        system = DistributedSystem.from_global(
            p.a, np.zeros_like(p.b), part, lambda sub, nodes: bic(sub, fill_level=0)
        )
        res = parallel_cg(system)
        assert res.converged and res.iterations == 0
