import numpy as np
import pytest

from repro.parallel import contact_aware_partition, partition_nodes_rcb
from repro.precond import LocalizedPreconditioner, TwoLevelPreconditioner, bic, sb_bic0
from repro.precond.localized import restrict_groups
from repro.precond.twolevel import aggregation_operator
from repro.solvers.cg import cg_solve


class TestAggregation:
    def test_shape_and_partition_of_unity(self):
        part = np.array([0, 0, 1, 1, 1])
        r = aggregation_operator(part, b=3)
        assert r.shape == (6, 15)
        # rows sum to 1 (averaging)
        assert np.allclose(np.asarray(r.sum(axis=1)).reshape(-1), 1.0)

    def test_component_separation(self):
        part = np.array([0, 0])
        r = aggregation_operator(part, b=3).toarray()
        # coarse x-row touches only x DOFs
        assert np.allclose(r[0, [1, 2, 4, 5]], 0.0)
        assert np.allclose(r[0, [0, 3]], 0.5)


class TestTwoLevel:
    def test_spd_action(self, block_problem_small):
        p = block_problem_small
        part = partition_nodes_rcb(p.mesh.coords, 4)
        tl = TwoLevelPreconditioner(p.a, part, lambda s, n: bic(s, fill_level=0))
        rng = np.random.default_rng(0)
        x, y = rng.normal(size=p.ndof), rng.normal(size=p.ndof)
        assert np.isclose(x @ tl.apply(y), tl.apply(x) @ y, rtol=1e-8)
        for _ in range(3):
            v = rng.normal(size=p.ndof)
            assert v @ tl.apply(v) > 0

    def test_never_worse_than_localized(self, block_problem_stiff):
        p = block_problem_stiff
        part = contact_aware_partition(p.mesh.coords, p.groups, 8)

        def factory(sub, nodes):
            return sb_bic0(sub, restrict_groups(p.groups, nodes, p.mesh.n_nodes))

        lp = LocalizedPreconditioner(p.a, part, factory)
        tl = TwoLevelPreconditioner(p.a, part, factory)
        r1 = cg_solve(p.a, p.b, lp, max_iter=30000)
        r2 = cg_solve(p.a, p.b, tl, max_iter=30000)
        assert r2.converged
        assert r2.iterations <= r1.iterations

    def test_improvement_grows_with_domains(self, block_problem_stiff):
        """On the ill-conditioned problem with contact-aware partitions,
        the coarse space pays off more as the domain count grows."""
        p = block_problem_stiff
        gains = []
        for nd in (2, 8):
            part = contact_aware_partition(p.mesh.coords, p.groups, nd)

            def factory(sub, nodes):
                return sb_bic0(sub, restrict_groups(p.groups, nodes, p.mesh.n_nodes))

            lp = LocalizedPreconditioner(p.a, part, factory)
            tl = TwoLevelPreconditioner(p.a, part, factory)
            i1 = cg_solve(p.a, p.b, lp, max_iter=30000).iterations
            i2 = cg_solve(p.a, p.b, tl, max_iter=30000).iterations
            gains.append(i1 - i2)
        assert gains[1] >= gains[0]

    def test_solution_correct(self, block_problem_small, block_reference):
        p = block_problem_small
        part = partition_nodes_rcb(p.mesh.coords, 4)
        tl = TwoLevelPreconditioner(p.a, part, lambda s, n: bic(s, fill_level=0))
        res = cg_solve(p.a, p.b, tl)
        err = np.linalg.norm(res.x - block_reference) / np.linalg.norm(block_reference)
        assert err < 1e-6

    def test_memory_accounts_for_parts(self, block_problem_small):
        p = block_problem_small
        part = partition_nodes_rcb(p.mesh.coords, 4)
        tl = TwoLevelPreconditioner(p.a, part, lambda s, n: bic(s, fill_level=0))
        lp = LocalizedPreconditioner(p.a, part, lambda s, n: bic(s, fill_level=0))
        assert tl.memory_bytes() >= lp.memory_bytes()
