"""The symbolic/numeric setup split (DESIGN.md section 9).

Property tests: a numeric-only ``refactor(a')`` on the cached symbolic
pattern must agree with a from-scratch factorization of ``a'`` — on the
factor ``L``, the inverted diagonal blocks, and the ``apply()`` output —
to <= 1e-13, across the ALM penalty range 1e3..1e6 and all BIC fill
levels.  Plus the setup-census guarantees: ``solve_nonlinear_contact``
with penalty back-offs runs exactly one symbolic setup, the resilience
ladder shares one BIC-family pattern phase, and the distributed /
localized preconditioners refactor without any new symbolic work.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.fem.assembly import assemble_stiffness
from repro.fem.bc import all_dofs, apply_dirichlet, component_dofs, surface_load
from repro.fem.generators import simple_block_model
from repro.fem.model import build_contact_problem
from repro.fem.nonlinear import solve_nonlinear_contact
from repro.parallel.distributed import DistributedSystem, parallel_cg
from repro.parallel.partition import partition_nodes_rcb
from repro.precond import (
    LocalizedPreconditioner,
    bic,
    reset_setup_counters,
    sb_bic0,
    scalar_ic0,
    setup_counters,
)
from repro.precond.localized import restrict_groups
from repro.resilience.resilient import default_ladder
from repro.sparse.patterns import (
    csr_extract_map,
    csr_position_map,
    csr_union_pattern,
)

PENALTIES = [1e3, 1e4, 1e5, 1e6]


@pytest.fixture(scope="module")
def mesh():
    return simple_block_model(3, 3, 2, 3, 3)


@pytest.fixture(scope="module")
def problems(mesh):
    """The same contact model assembled at every test penalty."""
    return {lam: build_contact_problem(mesh, penalty=lam) for lam in PENALTIES}


def _assert_same_factorization(refd, fresh, r):
    assert refd.L.data == pytest.approx(fresh.L.data, rel=1e-13, abs=1e-16)
    assert refd._dinv == pytest.approx(fresh._dinv, rel=1e-13, abs=1e-16)
    za, zb = refd.apply(r), fresh.apply(r)
    scale = max(float(np.abs(zb).max()), 1e-300)
    assert np.abs(za - zb).max() / scale <= 1e-13


class TestRefactorAgreesWithFresh:
    @pytest.mark.parametrize("penalty", PENALTIES)
    def test_sbbic_across_penalties(self, problems, penalty):
        base = problems[PENALTIES[-1]]
        m = sb_bic0(base.a, base.groups)
        p = problems[penalty]
        m.refactor(p.a)
        fresh = sb_bic0(p.a, p.groups)
        r = np.random.default_rng(3).standard_normal(p.ndof)
        _assert_same_factorization(m, fresh, r)

    @pytest.mark.parametrize("fill_level", [0, 1, 2])
    @pytest.mark.parametrize("penalty", [1e3, 1e6])
    def test_bic_all_levels(self, problems, fill_level, penalty):
        base = problems[1e4]
        m = bic(base.a, fill_level=fill_level)
        p = problems[penalty]
        m.refactor(p.a)
        fresh = bic(p.a, fill_level=fill_level)
        r = np.random.default_rng(4).standard_normal(p.ndof)
        _assert_same_factorization(m, fresh, r)

    def test_scalar_ic0(self, problems):
        m = scalar_ic0(problems[1e6].a)
        m.refactor(problems[1e3].a)
        fresh = scalar_ic0(problems[1e3].a)
        r = np.random.default_rng(5).standard_normal(problems[1e3].ndof)
        _assert_same_factorization(m, fresh, r)

    def test_shift_refactor_matches_fresh_shifted(self, problems):
        p = problems[1e5]
        m = bic(p.a, fill_level=0)
        m.refactor(shift=0.25)
        fresh = bic(p.a, fill_level=0, shift=0.25)
        r = np.random.default_rng(6).standard_normal(p.ndof)
        _assert_same_factorization(m, fresh, r)

    def test_shared_symbolic_constructor(self, problems):
        """sb_bic0(symbolic=...) skips the pattern phase, same numerics."""
        p6, p3 = problems[1e6], problems[1e3]
        m6 = sb_bic0(p6.a, p6.groups)
        reset_setup_counters()
        m3 = sb_bic0(p3.a, p3.groups, symbolic=m6.symbolic)
        assert setup_counters() == {"symbolic": 0, "numeric": 1, "evictions": 0}
        fresh = sb_bic0(p3.a, p3.groups)
        r = np.random.default_rng(7).standard_normal(p3.ndof)
        _assert_same_factorization(m3, fresh, r)

    def test_reference_apply_invalidated_by_refactor(self, problems):
        p6, p3 = problems[1e6], problems[1e3]
        m = sb_bic0(p6.a, p6.groups)
        m.reference_apply(np.zeros(p6.ndof))  # build the lazy buckets
        m.refactor(p3.a)
        fresh = sb_bic0(p3.a, p3.groups)
        r = np.random.default_rng(8).standard_normal(p3.ndof)
        assert m.reference_apply(r) == pytest.approx(fresh.reference_apply(r))


class TestInvalidation:
    def test_pattern_change_raises(self, problems):
        p = problems[1e6]
        m = sb_bic0(p.a, p.groups)
        other = sp.identity(p.ndof, format="csr")
        with pytest.raises(ValueError, match="pattern"):
            m.refactor(other)

    def test_symbolic_mismatch_raises(self, problems):
        p = problems[1e6]
        m = bic(p.a, fill_level=0)
        with pytest.raises(ValueError, match="symbolic"):
            bic(p.a, fill_level=1, symbolic=m.symbolic)

    def test_stats_count_setups(self, problems):
        p = problems[1e6]
        m = sb_bic0(p.a, p.groups)
        stats = m.factorization_stats()
        assert stats["symbolic_setups"] == 1
        assert stats["numeric_setups"] == 1
        m.refactor(problems[1e3].a)
        m.refactor(problems[1e4].a)
        stats = m.factorization_stats()
        assert stats["numeric_setups"] == 3
        shared = sb_bic0(p.a, p.groups, symbolic=m.symbolic)
        assert shared.factorization_stats()["symbolic_setups"] == 0


@pytest.fixture(scope="module")
def alm_system():
    mesh = simple_block_model(2, 2, 2, 2, 2)
    k = assemble_stiffness(mesh)
    f = surface_load(mesh, mesh.node_sets["zmax"], np.array([0.0, 0.0, -1.0]))
    fixed = np.unique(
        np.concatenate(
            [
                all_dofs(mesh.node_sets["zmin"]),
                component_dofs(mesh.node_sets["xmin"], 0),
                component_dofs(mesh.node_sets["ymin"], 1),
            ]
        )
    )
    a_free, b = apply_dirichlet(k.to_csr(), f, fixed)
    return mesh, a_free, b


class _PoisonFirstSolve:
    """Wraps a real factorization; returns NaN until the first refactor.

    Forces the ALM driver down the penalty back-off path while keeping a
    preconditioner that supports numeric-only refactorization.
    """

    def __init__(self, inner):
        self.inner = inner
        self.poisoned = True
        self.name = inner.name
        self.setup_seconds = inner.setup_seconds

    def apply(self, r, out=None):
        z = self.inner.apply(r, out=out)
        if self.poisoned:
            z[:] = np.nan
        return z

    def refactor(self, a=None, **kw):
        self.inner.refactor(a, **kw)
        self.poisoned = False
        return self


class TestSingleSymbolicSetupInALM:
    def test_backoff_refactors_instead_of_rebuilding(self, alm_system):
        """>= 1 penalty back-off, exactly one symbolic setup (the
        acceptance criterion of the symbolic/numeric split)."""
        mesh, a_free, b = alm_system
        calls = []

        def factory(a):
            calls.append(1)
            return _PoisonFirstSolve(bic(a, fill_level=0))

        reset_setup_counters()
        res = solve_nonlinear_contact(
            a_free,
            b,
            mesh.contact_groups,
            mesh.n_nodes,
            penalty=1e4,
            precond_factory=factory,
        )
        assert res.penalty_backoffs >= 1
        assert res.converged
        assert len(calls) == 1  # the factory ran once; back-off refactored
        counters = setup_counters()
        assert counters["symbolic"] == 1
        assert counters["numeric"] == 1 + res.penalty_backoffs

    def test_healthy_run_single_setup(self, alm_system):
        mesh, a_free, b = alm_system
        reset_setup_counters()
        res = solve_nonlinear_contact(
            a_free,
            b,
            mesh.contact_groups,
            mesh.n_nodes,
            penalty=1e4,
            precond_factory=lambda a: bic(a, fill_level=0),
        )
        assert res.converged and res.penalty_backoffs == 0
        assert setup_counters() == {"symbolic": 1, "numeric": 1, "evictions": 0}

    def test_build_system_matches_explicit_sum(self, alm_system):
        """The values-only union-pattern build equals A_free + lam C^T C
        for every penalty, including after an in-place penalty change."""
        from repro.fem.contact import constraint_matrix

        mesh, a_free, b = alm_system
        c = constraint_matrix(mesh.contact_groups, mesh.n_nodes)
        ctc = (c.T @ c).tocsr()
        ctc.sum_duplicates()
        ctc.sort_indices()
        af = sp.csr_matrix(a_free)
        af.sum_duplicates()
        af.sort_indices()
        u = csr_union_pattern(af, ctc)
        mf = csr_position_map(u, af)
        mc = csr_position_map(u, ctc)
        for lam in (1e4, 1e3, 1e2):  # mirrors a back-off sequence
            u.data[:] = 0.0
            u.data[mf] = af.data
            u.data[mc] += lam * ctc.data
            explicit = (a_free + lam * ctc).tocsr()
            assert abs(u - explicit).max() <= 1e-12 * abs(explicit).max()


class TestLadderSharesSymbolic:
    def test_bic_family_rungs_share_pattern_phase(self, alm_system):
        mesh, a_free, b = alm_system
        p = build_contact_problem(simple_block_model(2, 2, 2, 2, 2), penalty=1e4)
        ladder = default_ladder(p.a, p.groups)
        names = [s.name for s in ladder]
        assert names[0] == "SB-BIC(0)" and names[1] == "BIC(0)"
        reset_setup_counters()
        m_plain = ladder[1].build()
        m_shift1 = ladder[2].build()
        m_shift2 = ladder[3].build()
        counters = setup_counters()
        assert counters["symbolic"] == 1  # one pattern phase for the family
        assert counters["numeric"] == 3
        assert m_shift1 is m_plain and m_shift2 is m_plain  # refactored rung
        # the escalated rung numerically equals a fresh shifted build
        dbar = float(np.abs(p.a.diagonal()).mean())
        fresh = bic(p.a, fill_level=0, shift=0.1 * dbar)
        r = np.random.default_rng(10).standard_normal(p.ndof)
        assert m_shift2.apply(r) == pytest.approx(fresh.apply(r), rel=1e-13)

    def test_shifted_rung_without_plain_build(self, alm_system):
        """Escalating straight to a shifted rung still works standalone."""
        p = build_contact_problem(simple_block_model(2, 2, 2, 2, 2), penalty=1e4)
        ladder = default_ladder(p.a, p.groups)
        dbar = float(np.abs(p.a.diagonal()).mean())
        m = ladder[2].build()  # first BIC-family build is the shifted one
        fresh = bic(p.a, fill_level=0, shift=0.01 * dbar)
        r = np.random.default_rng(11).standard_normal(p.ndof)
        assert m.apply(r) == pytest.approx(fresh.apply(r), rel=1e-13)


class TestDistributedRefactor:
    @pytest.fixture(scope="class")
    def partitioned(self):
        mesh = simple_block_model(3, 3, 2, 3, 3)
        p6 = build_contact_problem(mesh, penalty=1e6)
        p3 = build_contact_problem(mesh, penalty=1e3)
        part = partition_nodes_rcb(mesh.coords, 4)
        return mesh, p6, p3, part

    @staticmethod
    def _factory(problem):
        return lambda sub, nodes: sb_bic0(
            sub, restrict_groups(problem.groups, nodes, problem.mesh.n_nodes)
        )

    def test_refactor_matches_from_global(self, partitioned):
        mesh, p6, p3, part = partitioned
        fac = self._factory(p6)
        system = DistributedSystem.from_global(p6.a, p6.b, part, fac)
        reset_setup_counters()
        system.refactor(p3.a, p3.b)
        assert setup_counters()["symbolic"] == 0  # values-only per domain
        res = parallel_cg(system)
        fresh = parallel_cg(DistributedSystem.from_global(p3.a, p3.b, part, fac))
        assert res.converged and fresh.converged
        assert res.iterations == fresh.iterations
        assert res.x == pytest.approx(fresh.x, rel=1e-12, abs=1e-14)

    def test_refactor_pattern_mismatch_raises(self, partitioned):
        mesh, p6, _p3, part = partitioned
        system = DistributedSystem.from_global(p6.a, p6.b, part, self._factory(p6))
        with pytest.raises(ValueError, match="pattern"):
            system.refactor(sp.identity(p6.ndof, format="csr"))

    def test_localized_refactor_matches_fresh(self, partitioned):
        mesh, p6, p3, part = partitioned
        fac = self._factory(p6)
        lp = LocalizedPreconditioner(p6.a, part, fac)
        reset_setup_counters()
        lp.refactor(p3.a)
        assert setup_counters()["symbolic"] == 0
        fresh = LocalizedPreconditioner(p3.a, part, fac)
        r = np.random.default_rng(12).standard_normal(p3.ndof)
        assert lp.apply(r) == pytest.approx(fresh.apply(r), rel=1e-13)


class TestPatternUtilities:
    def test_union_pattern_and_position_maps(self):
        rng = np.random.default_rng(13)
        a = sp.random(30, 30, density=0.1, random_state=42).tocsr()
        a.sum_duplicates()
        a.sort_indices()
        d = sp.diags(rng.standard_normal(30)).tocsr()
        u = csr_union_pattern(a, d)
        ma = csr_position_map(u, a)
        md = csr_position_map(u, d)
        u.data[:] = 0.0
        u.data[ma] = a.data
        u.data[md] += 2.5 * d.data
        dense = (a + 2.5 * d).toarray()
        assert u.toarray() == pytest.approx(dense)

    def test_union_keeps_exact_cancellations(self):
        a = sp.csr_matrix(np.array([[1.0, 2.0], [0.0, 3.0]]))
        b = sp.csr_matrix(np.array([[-1.0, -2.0], [0.0, 0.0]]))
        b.eliminate_zeros()
        u = csr_union_pattern(a, b)
        assert u.nnz == 3  # (0,0),(0,1),(1,1) survive despite value cancel

    def test_position_map_rejects_foreign_entries(self):
        a = sp.identity(4, format="csr")
        full = sp.csr_matrix(np.ones((4, 4)))
        with pytest.raises(ValueError):
            csr_position_map(a, full)

    def test_extract_map_regathers(self):
        rng = np.random.default_rng(14)
        a = sp.random(40, 40, density=0.15, random_state=7).tocsr()
        a = (a + a.T).tocsr()
        a.sum_duplicates()
        a.sort_indices()
        idx = np.array([3, 5, 8, 13, 21, 34])
        sub, gather = csr_extract_map(a, idx)
        assert sub.toarray() == pytest.approx(a[idx][:, idx].toarray())
        a.data *= -3.0
        sub.data[:] = a.data[gather]
        assert sub.toarray() == pytest.approx(a[idx][:, idx].toarray())

    def test_vbr_empty_like_shares_structure(self, problems):
        p = problems[1e6]
        m = sb_bic0(p.a, p.groups)
        twin = m.L.empty_like()
        assert twin.indptr is m.L.indptr and twin.boff is m.L.boff
        assert twin.data.size == m.L.data.size and not twin.data.any()
