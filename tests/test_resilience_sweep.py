"""Tier-1 smoke of the seeded fault-injection sweep (scripts/fault_sweep.py).

The full matrix (fault kind x preconditioner x seed x exchange slot) runs
as a CI script; here the ``--quick`` configuration must report 100%
detection and 100% recovery, which is the contract every future
communication-layer optimization is tested against.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "scripts"))

import fault_sweep  # noqa: E402


def test_quick_sweep_full_detection_and_recovery():
    summary = fault_sweep.run_sweep(quick=True)
    assert summary["n_runs"] == 9  # 3 preconditioners x 3 fault kinds
    assert summary["detection_rate"] == 1.0
    assert summary["recovery_rate"] == 1.0
    # every run injected exactly the one scheduled fault
    assert all(r["injected"] == 1 for r in summary["runs"])


def test_cli_entry_quick():
    assert fault_sweep.main(["--quick"]) == 0
