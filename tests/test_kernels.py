"""The kernel registry (repro.kernels): selection, fallback, parity.

Three layers of coverage:

1. **Registry semantics** — backend resolution precedence (explicit arg >
   ``set_backend`` > ``REPRO_KERNEL_BACKEND`` > auto), the numba -> numpy
   fallback with exactly one logged warning, and the uniform
   warmup/describe surface.
2. **Cross-backend parity** — every backend's kernels against the
   bucketed ``reference_apply`` oracle (and each other) to <= 1e-13,
   across preconditioner families, color counts, input dtypes, and the
   diagonal-only / empty-group edge cases.  The numba backend degrades
   to plain-Python kernels when numba is absent (identity ``_jit``,
   ``prange = range``), so its *logic* is exercised here even in a
   numpy-only environment.
3. **Plan layouts** — the lazily-built :class:`FlatSweep` concatenation
   must describe exactly the same operators as the scipy layout.
"""

import logging

import numpy as np
import pytest
import scipy.sparse as sp

from repro import kernels
from repro.fem.generators import simple_block_model
from repro.fem.model import build_contact_problem
from repro.kernels import numba_backend, numpy_backend, registry
from repro.precond import bic, sb_bic0, scalar_ic0
from repro.solvers.cg import cg_solve
from repro.sparse.bcsr import BCSRMatrix
from repro.sparse.vbr import VBRMatrix

BACKEND_MODULES = {"numpy": numpy_backend, "numba": numba_backend}


@pytest.fixture(autouse=True)
def clean_registry(monkeypatch):
    """Isolate every test from process-wide backend state."""
    monkeypatch.delenv(kernels.ENV_VAR, raising=False)
    kernels.reset()
    yield
    kernels.reset()


def spd_csr(ndof, seed, density=0.25):
    m = sp.random(
        ndof, ndof, density=density, random_state=np.random.RandomState(seed)
    )
    a = (m + m.T).tocsr()
    a.setdiag(np.asarray(abs(a).sum(axis=1)).reshape(-1) + 1.0)
    a.sum_duplicates()
    a.sort_indices()
    return a


def backend_apply(mod, m, r):
    """Drive one factorization apply through a specific backend module."""
    y = mod.apply_substitution(m._plan, np.asarray(r, dtype=np.float64)[m.perm_dof])
    out = np.empty(m.ndof)
    out[m.perm_dof] = y
    return out


def assert_close(got, want, rtol=1e-13):
    scale = max(1.0, float(np.linalg.norm(want)))
    assert float(np.linalg.norm(got - want)) <= rtol * scale


# ----------------------------------------------------------------------
# registry semantics
# ----------------------------------------------------------------------


class TestRegistry:
    def test_numpy_always_available(self):
        assert "numpy" in kernels.available_backends()
        assert numpy_backend.is_available()

    def test_auto_prefers_numba_when_importable(self, monkeypatch):
        monkeypatch.setattr(numba_backend, "is_available", lambda: True)
        assert kernels.resolve_name() == "numba"
        monkeypatch.setattr(numba_backend, "is_available", lambda: False)
        assert kernels.resolve_name() == "numpy"

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setattr(numba_backend, "is_available", lambda: True)
        monkeypatch.setenv(kernels.ENV_VAR, "numpy")
        assert kernels.active_backend() == "numpy"

    def test_set_backend_beats_env(self, monkeypatch):
        monkeypatch.setattr(numba_backend, "is_available", lambda: True)
        monkeypatch.setenv(kernels.ENV_VAR, "numpy")
        assert kernels.set_backend("numba") == "numba"
        assert kernels.active_backend() == "numba"
        assert kernels.get_backend() is numba_backend

    def test_explicit_arg_beats_set_backend(self, monkeypatch):
        monkeypatch.setattr(numba_backend, "is_available", lambda: True)
        kernels.set_backend("numba")
        assert kernels.resolve_name("numpy") == "numpy"
        assert kernels.get_backend("numpy") is numpy_backend

    def test_set_backend_none_or_auto_restores_auto(self, monkeypatch):
        kernels.set_backend("numpy")
        monkeypatch.setattr(numba_backend, "is_available", lambda: True)
        assert kernels.active_backend() == "numpy"
        kernels.set_backend(None)
        assert kernels.active_backend() == "numba"
        kernels.set_backend("numpy")
        kernels.set_backend("auto")
        assert kernels.active_backend() == "numba"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            kernels.set_backend("cuda")
        with pytest.raises(ValueError, match="unknown kernel backend"):
            kernels.resolve_name("fortran")

    def test_fallback_to_numpy_warns_once(self, monkeypatch, caplog):
        """Requesting numba without numba serves numpy, one warning total."""
        monkeypatch.setattr(numba_backend, "is_available", lambda: False)
        kernels.set_backend("numba")
        with caplog.at_level(logging.WARNING, logger="repro.kernels"):
            assert kernels.active_backend() == "numpy"
            assert kernels.get_backend() is numpy_backend
            kernels.get_backend()  # second resolution: no second warning
        warnings = [r for r in caplog.records if "falling back" in r.message]
        assert len(warnings) == 1
        assert "numba" in warnings[0].getMessage()

    def test_fallback_dispatch_is_silent_and_correct(self, monkeypatch, caplog):
        """A whole solve under a failed numba request runs on numpy."""
        monkeypatch.setattr(numba_backend, "is_available", lambda: False)
        monkeypatch.setenv(kernels.ENV_VAR, "numba")
        a = spd_csr(36, 3)
        with caplog.at_level(logging.WARNING, logger="repro.kernels"):
            m = bic(a, fill_level=0)
            assert m.kernel_backend == "numpy"
            r = np.random.default_rng(0).normal(size=36)
            assert_close(m.apply(r), m.reference_apply(r))
        assert sum("falling back" in r.message for r in caplog.records) == 1

    def test_warmup_reports_backend(self):
        info = kernels.warmup("numpy")
        assert info == {"backend": "numpy", "seconds": 0.0}

    def test_describe_census(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "numpy")
        kernels.set_backend("numpy")
        info = kernels.describe()
        assert info["active"] == "numpy"
        assert info["explicit"] == "numpy"
        assert info["env"] == "numpy"
        assert "numpy" in info["available"]

    def test_cli_flag_sets_backend(self, capsys):
        from repro.cli import main

        rc = main(
            ["solve", "--model", "block", "--scale", "0.3",
             "--kernel-backend", "numpy"]
        )
        assert rc == 0
        assert "kernel backend: numpy" in capsys.readouterr().out


# ----------------------------------------------------------------------
# cross-backend parity vs the bucketed reference oracle
# ----------------------------------------------------------------------

FAMILIES = {
    "ic0-scalar": lambda a: scalar_ic0(a),
    "bic0-dmod": lambda a: bic(a, fill_level=0, variant="dmod"),
    "bic0-full": lambda a: bic(a, fill_level=0, variant="full"),
    "bic1": lambda a: bic(a, fill_level=1),
}


class TestApplyParity:
    @pytest.mark.parametrize("backend", sorted(BACKEND_MODULES))
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_matches_reference(self, family, backend):
        a = spd_csr(36, hash(family) % 1000)
        m = FAMILIES[family](a)
        rng = np.random.default_rng(4)
        for _ in range(3):
            r = rng.normal(size=36)
            assert_close(backend_apply(BACKEND_MODULES[backend], m, r),
                         m.reference_apply(r))

    @pytest.mark.parametrize("backend", sorted(BACKEND_MODULES))
    @pytest.mark.parametrize("ncolors", [0, 2, 5])
    def test_color_counts(self, ncolors, backend):
        """Parity must hold for every multicolor schedule width."""
        a = spd_csr(45, 7 + ncolors)
        m = bic(a, fill_level=0, ncolors=ncolors)
        r = np.random.default_rng(1).normal(size=45)
        assert_close(backend_apply(BACKEND_MODULES[backend], m, r),
                     m.reference_apply(r))

    @pytest.mark.parametrize("backend", sorted(BACKEND_MODULES))
    def test_sbbic_contact_problem(self, backend):
        p = build_contact_problem(simple_block_model(3, 3, 2, 3, 3), penalty=1e6)
        m = sb_bic0(p.a, p.groups)
        rng = np.random.default_rng(11)
        for r in (rng.normal(size=p.ndof), p.b):
            assert_close(backend_apply(BACKEND_MODULES[backend], m, r),
                         m.reference_apply(r))

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_input_dtypes(self, dtype):
        """apply() casts once; both backends then see identical float64."""
        a = spd_csr(30, 9)
        m = bic(a, fill_level=0)
        r = np.random.default_rng(2).normal(size=30).astype(dtype)
        want = m.reference_apply(np.asarray(r, dtype=np.float64))
        assert_close(m.apply(r), want)
        assert_close(backend_apply(numba_backend, m, r), want)

    @pytest.mark.parametrize("backend", sorted(BACKEND_MODULES))
    def test_diagonal_matrix_empty_groups(self, backend):
        """A diagonal matrix compiles no substitution operators at all:
        every group's fwd/bwd op is None (empty FlatSweep row ranges),
        and M^{-1} r must reduce to the exact diagonal solve."""
        d = np.linspace(1.0, 5.0, 24)
        a = sp.diags(d).tocsr()
        m = scalar_ic0(a)
        r = np.random.default_rng(3).normal(size=24)
        got = backend_apply(BACKEND_MODULES[backend], m, r)
        assert_close(got, r / d)
        assert_close(got, m.reference_apply(r))

    def test_registry_dispatch_equals_direct_module_call(self):
        a = spd_csr(36, 13)
        m = bic(a, fill_level=1)
        r = np.random.default_rng(5).normal(size=36)
        kernels.set_backend("numpy")
        assert np.array_equal(m.apply(r), backend_apply(numpy_backend, m, r))


class TestFactorizationParity:
    """Both backends' numeric update kernels must build the same factor."""

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_factor_values_agree(self, family, monkeypatch):
        a = spd_csr(36, hash(family) % 500)
        kernels.set_backend("numpy")
        m_np = FAMILIES[family](a)
        monkeypatch.setattr(numba_backend, "is_available", lambda: True)
        kernels.set_backend("numba")
        m_nb = FAMILIES[family](a)
        assert m_np.kernel_backend == "numpy"
        assert m_nb.kernel_backend == "numba"
        # summation order differs (batched BLAS vs serial loops): allow a
        # few ulps, far tighter than any preconditioner quality margin
        r = np.random.default_rng(6).normal(size=36)
        assert_close(m_nb.apply(r), m_np.apply(r), rtol=1e-12)

    def test_refactor_through_numba_kernels(self, monkeypatch):
        """Numeric-only refactorization on the pure-Python JIT kernels."""
        p = build_contact_problem(simple_block_model(2, 2, 2, 2, 2), penalty=1e4)
        p2 = build_contact_problem(simple_block_model(2, 2, 2, 2, 2), penalty=1e6)
        m = sb_bic0(p.a, p.groups)
        monkeypatch.setattr(numba_backend, "is_available", lambda: True)
        kernels.set_backend("numba")
        m.refactor(p2.a)
        assert m.kernel_backend == "numba"
        m_ref = sb_bic0(p2.a, p2.groups)
        r = np.random.default_rng(7).normal(size=p.ndof)
        assert_close(m.apply(r), m_ref.reference_apply(r), rtol=1e-12)


class TestMatvecParity:
    def test_csr_matvec(self):
        a = spd_csr(50, 21)
        x = np.random.default_rng(0).normal(size=50)
        want = a @ x
        assert_close(numpy_backend.csr_matvec(a, x), want)
        assert_close(numba_backend.csr_matvec(a, x), want)

    def test_bcsr_matvec(self):
        a = spd_csr(36, 22)
        mat = BCSRMatrix.from_scipy(a, b=3)
        x = np.random.default_rng(1).normal(size=36)
        want = a @ x
        assert_close(numpy_backend.bcsr_matvec(mat, x), want)
        assert_close(numba_backend.bcsr_matvec(mat, x), want)

    def test_vbr_matvec_variable_blocks(self):
        a = spd_csr(20, 23)
        supernodes = [
            np.arange(0, 7), np.arange(7, 9), np.arange(9, 10),
            np.arange(10, 16), np.arange(16, 20),
        ]
        mat = VBRMatrix.from_csr(a, supernodes)
        x = np.random.default_rng(2).normal(size=20)
        want = mat.to_csr() @ x
        assert_close(numpy_backend.vbr_matvec(mat, x), want)
        assert_close(numba_backend.vbr_matvec(mat, x), want)

    def test_cg_solution_backend_invariant(self, monkeypatch):
        p = build_contact_problem(simple_block_model(2, 2, 2, 2, 2), penalty=1e5)
        kernels.set_backend("numpy")
        res_np = cg_solve(p.a, p.b, sb_bic0(p.a, p.groups))
        monkeypatch.setattr(numba_backend, "is_available", lambda: True)
        kernels.set_backend("numba")
        res_nb = cg_solve(p.a, p.b, sb_bic0(p.a, p.groups))
        assert res_np.converged and res_nb.converged
        assert abs(res_np.iterations - res_nb.iterations) <= 1
        assert np.allclose(res_np.x, res_nb.x,
                           atol=1e-8 * max(1.0, np.abs(res_np.x).max()))


# ----------------------------------------------------------------------
# plan layouts
# ----------------------------------------------------------------------


class TestFlatSweep:
    def test_flat_layout_matches_scipy_layout(self):
        a = spd_csr(36, 31)
        plan = bic(a, fill_level=1)._plan
        dptr, dind, ddat, fwd, bwd = plan.flat()
        got = sp.csr_matrix((ddat, dind, dptr), shape=(plan.ndof, plan.ndof))
        assert_close(got.toarray(), plan.dinv_all.toarray(), rtol=0.0)
        for sweep, ops in ((fwd, plan.fwd_ops), (bwd, plan.bwd_ops)):
            assert sweep.group_ptr.size == len(ops) + 1
            assert sweep.rows.size == int(sweep.group_ptr[-1])
            assert sweep.indptr.size == sweep.rows.size + 1
            t = 0
            for g, op in enumerate(ops):
                lo, hi = int(sweep.group_ptr[g]), int(sweep.group_ptr[g + 1])
                if op is None:
                    assert lo == hi
                    continue
                assert hi - lo == op.shape[0]
                for local in range(op.shape[0]):
                    s, e = sweep.indptr[t], sweep.indptr[t + 1]
                    assert np.array_equal(sweep.indices[s:e],
                                          op.indices[op.indptr[local]:op.indptr[local + 1]])
                    assert np.array_equal(sweep.data[s:e],
                                          op.data[op.indptr[local]:op.indptr[local + 1]])
                    t += 1

    def test_flat_is_cached(self):
        plan = bic(spd_csr(24, 32), fill_level=0)._plan
        assert plan.flat() is plan.flat()

    def test_refactor_rebuilds_plan(self):
        a1 = spd_csr(30, 33)
        a2 = a1.copy()  # same pattern, different values (still SPD)
        a2.setdiag(a1.diagonal() * 2.0)
        m = bic(a1, fill_level=0)
        first = m._plan
        m.refactor(a2)
        assert m._plan is not first
        r = np.random.default_rng(8).normal(size=30)
        assert_close(m.apply(r), m.reference_apply(r))

    def test_precond_warmup_chains(self):
        m = bic(spd_csr(24, 35), fill_level=0)
        assert m.warmup() is m
        assert m._plan._flat is not None or kernels.active_backend() == "numpy"
