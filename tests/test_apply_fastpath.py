"""Compiled-CSR substitution fast path vs the bucketed reference oracle.

``BlockICFactorization.apply`` runs pre-compiled scipy CSR kernels;
``reference_apply`` keeps the original per-bucket gather/matmul/scatter
loops.  These tests pin the two paths together across every
preconditioner family the paper uses, on random SPD block systems and on
a real contact problem with a large penalty.
"""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fem.generators import simple_block_model
from repro.fem.model import build_contact_problem
from repro.precond import bic, sb_bic0, scalar_ic0
from repro.precond.base import Preconditioner
from repro.solvers.cg import cg_solve


def spd_csr(ndof, seed, density=0.25):
    m = sp.random(
        ndof, ndof, density=density, random_state=np.random.RandomState(seed)
    )
    a = (m + m.T).tocsr()
    a.setdiag(np.asarray(abs(a).sum(axis=1)).reshape(-1) + 1.0)
    a.sum_duplicates()
    a.sort_indices()
    return a


def agree(m, r, rtol=1e-13):
    ref = m.reference_apply(r)
    fast = m.apply(r)
    assert np.linalg.norm(fast - ref) <= rtol * max(1.0, np.linalg.norm(ref))


FAMILIES = {
    "ic0-scalar": lambda a: scalar_ic0(a),
    "bic0-dmod": lambda a: bic(a, fill_level=0, variant="dmod"),
    "bic0-full": lambda a: bic(a, fill_level=0, variant="full"),
    "bic1": lambda a: bic(a, fill_level=1),
    "bic2": lambda a: bic(a, fill_level=2),
}


class TestFastPathAgreement:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_matches_reference(self, family):
        a = spd_csr(36, hash(family) % 1000)
        m = FAMILIES[family](a)
        rng = np.random.default_rng(3)
        for _ in range(4):
            agree(m, rng.normal(size=36))

    def test_sbbic_on_contact_problem_large_penalty(self):
        p = build_contact_problem(simple_block_model(3, 3, 2, 3, 3), penalty=1e6)
        m = sb_bic0(p.a, p.groups)
        rng = np.random.default_rng(11)
        for _ in range(3):
            agree(m, rng.normal(size=p.ndof))
        agree(m, p.b)

    def test_buffer_reuse_is_stateless(self):
        """Repeated applies with different inputs must not leak state
        through the preallocated work vectors."""
        a = spd_csr(24, 5)
        m = bic(a, fill_level=0)
        rng = np.random.default_rng(6)
        r1, r2 = rng.normal(size=24), rng.normal(size=24)
        first = m.apply(r1).copy()
        m.apply(r2)
        assert np.array_equal(m.apply(r1), first)

    def test_out_buffer(self):
        a = spd_csr(24, 7)
        m = bic(a, fill_level=0)
        r = np.random.default_rng(8).normal(size=24)
        out = np.empty(24)
        res = m.apply(r, out=out)
        assert res is out
        assert np.array_equal(out, m.apply(r))

    def test_cg_iterates_identical_to_reference_path(self):
        """CG driven by the fast apply must reproduce the solve of the
        bucketed path (same solution, same iteration count +-1)."""

        class RefWrapper(Preconditioner):
            def __init__(self, m):
                self._m = m
                self.name = m.name + " (reference)"
                self.setup_seconds = m.setup_seconds

            def apply(self, r):
                return self._m.reference_apply(r)

        p = build_contact_problem(simple_block_model(3, 3, 2, 3, 3), penalty=1e6)
        m = sb_bic0(p.a, p.groups)
        fast = cg_solve(p.a, p.b, m)
        ref = cg_solve(p.a, p.b, RefWrapper(m))
        assert fast.converged and ref.converged
        assert abs(fast.iterations - ref.iterations) <= 1
        assert np.allclose(fast.x, ref.x, atol=1e-6 * max(1.0, np.abs(ref.x).max()))


@settings(max_examples=15, deadline=None)
@given(
    nblocks=st.integers(3, 10),
    seed=st.integers(0, 10_000),
    k=st.integers(0, 2),
)
def test_property_fast_path_matches_reference(nblocks, seed, k):
    ndof = 3 * nblocks
    a = spd_csr(ndof, seed)
    m = bic(a, fill_level=k)
    rng = np.random.default_rng(seed)
    for _ in range(2):
        agree(m, rng.normal(size=ndof))
