import numpy as np
import pytest

from repro.fem.generators import simple_block_model
from repro.fem.model import build_contact_problem


class TestBuildOptions:
    def test_body_load(self, block_mesh_small):
        prob = build_contact_problem(block_mesh_small, penalty=1e4, load="body")
        assert np.linalg.norm(prob.b) > 0

    def test_unknown_load_rejected(self, block_mesh_small):
        with pytest.raises(ValueError, match="load"):
            build_contact_problem(block_mesh_small, load="wind")

    def test_symmetry_off_fixes_fewer_dofs(self, block_mesh_small):
        with_sym = build_contact_problem(block_mesh_small, symmetry=True)
        without = build_contact_problem(block_mesh_small, symmetry=False)
        assert without.fixed_dofs.size < with_sym.fixed_dofs.size

    def test_penalty_zero_allowed(self, block_mesh_small):
        prob = build_contact_problem(block_mesh_small, penalty=0.0)
        assert prob.penalty == 0.0

    def test_load_magnitude_scales_rhs(self, block_mesh_small):
        p1 = build_contact_problem(block_mesh_small, load_magnitude=1.0)
        p2 = build_contact_problem(block_mesh_small, load_magnitude=2.0)
        free = np.setdiff1d(np.arange(p1.ndof), p1.fixed_dofs)
        assert np.allclose(p2.b[free], 2.0 * p1.b[free])

    def test_bcsr_view_matches_csr(self, block_problem_small):
        p = block_problem_small
        x = np.random.default_rng(0).normal(size=p.ndof)
        assert np.allclose(p.a_bcsr.matvec(x), p.a @ x)

    def test_problem_is_spd(self, block_problem_small):
        """CG solvability in practice: a few random Rayleigh quotients."""
        p = block_problem_small
        rng = np.random.default_rng(1)
        for _ in range(5):
            v = rng.normal(size=p.ndof)
            assert v @ (p.a @ v) > 0


class TestPermutationInvariance:
    def test_sbbic_result_independent_of_group_order(self):
        """Shuffling the contact-group list must not change the answer."""
        from repro.precond import sb_bic0
        from repro.solvers.cg import cg_solve

        mesh = simple_block_model(3, 3, 2, 3, 3)
        prob = build_contact_problem(mesh, penalty=1e6)
        g1 = prob.groups
        g2 = list(reversed(prob.groups))
        r1 = cg_solve(prob.a, prob.b, sb_bic0(prob.a, g1))
        r2 = cg_solve(prob.a, prob.b, sb_bic0(prob.a, g2))
        assert r1.converged and r2.converged
        assert np.allclose(r1.x, r2.x, atol=1e-6 * np.abs(r1.x).max())

    def test_precond_linear(self, block_problem_small):
        """M^{-1} is a linear operator: M^{-1}(a r + s) = a M^{-1}r + M^{-1}s."""
        from repro.precond import sb_bic0

        p = block_problem_small
        m = sb_bic0(p.a, p.groups)
        rng = np.random.default_rng(2)
        r, s = rng.normal(size=p.ndof), rng.normal(size=p.ndof)
        lhs = m.apply(2.5 * r + s)
        rhs = 2.5 * m.apply(r) + m.apply(s)
        assert np.allclose(lhs, rhs, atol=1e-10 * np.abs(lhs).max())
