"""Cross-module integration: full pipelines against direct references."""

import numpy as np
import pytest
import scipy.sparse.linalg as spla

from repro import (
    bic,
    build_contact_problem,
    cg_solve,
    sb_bic0,
    simple_block_model,
    southwest_japan_model,
)
from repro.parallel import DistributedSystem, contact_aware_partition, parallel_cg
from repro.precond.localized import restrict_groups


class TestEndToEnd:
    def test_block_model_full_pipeline(self):
        """Mesh -> assembly -> penalty -> BC -> SB-BIC(0) CG == direct."""
        mesh = simple_block_model(4, 4, 2, 4, 4)
        prob = build_contact_problem(mesh, penalty=1e6)
        res = cg_solve(prob.a, prob.b, sb_bic0(prob.a, prob.groups))
        ref = spla.spsolve(prob.a.tocsc(), prob.b)
        assert res.converged
        assert np.linalg.norm(res.x - ref) <= 1e-6 * np.linalg.norm(ref)

    def test_contact_constraint_satisfied_in_solution(self):
        """Large penalty forces coincident nodes to move together."""
        mesh = simple_block_model(3, 3, 2, 3, 3)
        prob = build_contact_problem(mesh, penalty=1e8)
        res = cg_solve(prob.a, prob.b, sb_bic0(prob.a, prob.groups))
        u = res.x.reshape(-1, 3)
        for g in mesh.contact_groups:
            spread = np.abs(u[g] - u[g[0]]).max()
            assert spread < 1e-5 * max(np.abs(u).max(), 1.0)

    def test_swjapan_distributed_pipeline(self):
        mesh = southwest_japan_model(6, 4, 2, 2)
        prob = build_contact_problem(mesh, penalty=1e6, load="body", symmetry=False)
        part = contact_aware_partition(mesh.coords, mesh.contact_groups, 3)
        system = DistributedSystem.from_global(
            prob.a,
            prob.b,
            part,
            lambda sub, nodes: sb_bic0(
                sub, restrict_groups(mesh.contact_groups, nodes, mesh.n_nodes)
            ),
        )
        res = parallel_cg(system, max_iter=20000)
        ref = spla.spsolve(prob.a.tocsc(), prob.b)
        assert res.converged
        assert np.linalg.norm(res.x - ref) <= 1e-6 * np.linalg.norm(ref)

    def test_displacement_physically_sensible(self):
        """Downward surface load -> downward mean displacement, fixed base."""
        mesh = simple_block_model(3, 3, 2, 3, 3)
        prob = build_contact_problem(mesh, penalty=1e6)
        res = cg_solve(prob.a, prob.b, sb_bic0(prob.a, prob.groups))
        u = res.x.reshape(-1, 3)
        assert np.allclose(u[mesh.node_sets["zmin"]], 0.0, atol=1e-10)
        assert u[mesh.node_sets["zmax"], 2].mean() < 0.0

    def test_solution_invariant_across_preconditioners(self):
        mesh = simple_block_model(3, 3, 2, 3, 3)
        prob = build_contact_problem(mesh, penalty=1e4)
        sols = []
        for m in (bic(prob.a, fill_level=0), bic(prob.a, fill_level=2), sb_bic0(prob.a, prob.groups)):
            sols.append(cg_solve(prob.a, prob.b, m).x)
        for s in sols[1:]:
            assert np.allclose(s, sols[0], atol=1e-5 * np.abs(sols[0]).max())

    def test_stiffer_penalty_monotone_gap_reduction(self):
        """The residual inter-face gap shrinks as the penalty grows."""
        mesh = simple_block_model(3, 3, 2, 3, 3)
        gaps = []
        for lam in (1e2, 1e4, 1e6):
            prob = build_contact_problem(mesh, penalty=lam)
            res = cg_solve(prob.a, prob.b, sb_bic0(prob.a, prob.groups))
            u = res.x.reshape(-1, 3)
            gaps.append(
                max(np.abs(u[g] - u[g[0]]).max() for g in mesh.contact_groups)
            )
        assert gaps[2] < gaps[1] < gaps[0]

    def test_public_api_surface(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None
