"""Deadline/retry/backoff policy engine against a fake clock.

The classification contract of DESIGN.md section 13, tested without
spawning a single process: deadline exceeded on every attempt with all
peers alive -> CommTimeout; a genuinely dead peer -> RankFailure
immediately; success on a retry -> the slow-but-alive peer is absorbed
with no failure surfaced.
"""

import pytest

from repro.parallel.transport.policy import (
    Incomplete,
    TransportPolicy,
    run_with_retry,
)
from repro.resilience.taxonomy import CommTimeout, FailureReason, RankFailure


class FakeClock:
    """Deterministic monotonic clock; sleep() just advances it."""

    def __init__(self) -> None:
        self.t = 0.0
        self.sleeps: list[float] = []

    def now(self) -> float:
        return self.t

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)
        self.t += seconds


def _run(attempt, policy, *, dead=(), clock=None, on_timeout=None):
    clock = clock or FakeClock()
    return run_with_retry(
        "test-op",
        attempt,
        dead_ranks=lambda: dead,
        policy=policy,
        sleep=clock.sleep,
        clock=clock.now,
        on_timeout=on_timeout,
    )


class TestPolicyValidation:
    def test_defaults_are_valid(self):
        p = TransportPolicy()
        assert p.deadline > 0 and p.max_retries >= 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"deadline": 0.0},
            {"deadline": -1.0},
            {"max_retries": -1},
            {"backoff": -0.1},
            {"backoff_factor": 0.5},
            {"tree_deadline": -2.0},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TransportPolicy(**kwargs)

    def test_worker_deadline_defaults_to_deadline(self):
        assert TransportPolicy(deadline=3.0).worker_deadline == 3.0
        assert (
            TransportPolicy(deadline=3.0, tree_deadline=1.5).worker_deadline
            == 1.5
        )

    def test_budget_is_attempts_plus_backoffs(self):
        p = TransportPolicy(
            deadline=1.0, max_retries=2, backoff=0.1, backoff_factor=2.0
        )
        # 3 attempts x 1.0s + backoffs 0.1 + 0.2
        assert p.budget() == pytest.approx(3.3)


class TestClassification:
    def test_first_try_success_touches_nothing(self):
        clock = FakeClock()
        result = _run(
            lambda deadline, a: "ok",
            TransportPolicy(deadline=1.0, max_retries=3),
            clock=clock,
        )
        assert result == "ok"
        assert clock.sleeps == []

    def test_slow_but_alive_absorbed_on_retry(self):
        """One missed deadline, then success: no failure surfaced."""
        attempts = []

        def attempt(deadline, a):
            attempts.append(a)
            if a == 0:
                raise Incomplete([2])
            return "recovered"

        observed = []
        result = _run(
            attempt,
            TransportPolicy(deadline=1.0, max_retries=2, backoff=0.05),
            on_timeout=lambda op, a, pending: observed.append((op, a, pending)),
        )
        assert result == "recovered"
        assert attempts == [0, 1]
        assert observed == [("test-op", 0, (2,))]

    def test_exhausted_retries_all_alive_is_comm_timeout(self):
        def attempt(deadline, a):
            raise Incomplete([1, 3])

        with pytest.raises(CommTimeout) as exc:
            _run(attempt, TransportPolicy(deadline=1.0, max_retries=2))
        err = exc.value
        assert err.op == "test-op"
        assert err.pending == (1, 3)
        assert err.attempts == 3  # max_retries + 1

    def test_dead_peer_escalates_to_rank_failure_immediately(self):
        """No retry budget is burned on a corpse."""
        attempts = []

        def attempt(deadline, a):
            attempts.append(a)
            raise Incomplete([1])

        with pytest.raises(RankFailure) as exc:
            _run(
                attempt,
                TransportPolicy(deadline=1.0, max_retries=5),
                dead=[1],
            )
        assert exc.value.rank == 1
        assert attempts == [0]  # one attempt, then straight to RankFailure

    def test_lowest_dead_rank_reported(self):
        def attempt(deadline, a):
            raise Incomplete([0, 1, 2])

        with pytest.raises(RankFailure) as exc:
            _run(attempt, TransportPolicy(deadline=1.0), dead=[2, 0])
        assert exc.value.rank == 0


class TestBackoffSchedule:
    def test_exponential_backoff_between_attempts(self):
        clock = FakeClock()

        def attempt(deadline, a):
            raise Incomplete([1])

        with pytest.raises(CommTimeout):
            _run(
                attempt,
                TransportPolicy(
                    deadline=1.0,
                    max_retries=3,
                    backoff=0.1,
                    backoff_factor=2.0,
                ),
                clock=clock,
            )
        # sleeps before retries 1..3; no sleep after the final attempt
        assert clock.sleeps == pytest.approx([0.1, 0.2, 0.4])

    def test_zero_backoff_never_sleeps(self):
        clock = FakeClock()

        def attempt(deadline, a):
            raise Incomplete([1])

        with pytest.raises(CommTimeout):
            _run(
                attempt,
                TransportPolicy(deadline=1.0, max_retries=2, backoff=0.0),
                clock=clock,
            )
        assert clock.sleeps == []

    def test_elapsed_uses_injected_clock(self):
        clock = FakeClock()

        def attempt(deadline, a):
            clock.t += deadline  # each attempt burns its full deadline
            raise Incomplete([1])

        with pytest.raises(CommTimeout) as exc:
            _run(
                attempt,
                TransportPolicy(deadline=2.0, max_retries=1, backoff=0.5),
                clock=clock,
            )
        # 2 attempts x 2.0s + one 0.5s backoff
        assert exc.value.elapsed == pytest.approx(4.5)

    def test_attempt_sees_deadline_and_index(self):
        seen = []

        def attempt(deadline, a):
            seen.append((deadline, a))
            if a < 2:
                raise Incomplete([0])
            return "done"

        _run(attempt, TransportPolicy(deadline=7.0, max_retries=2))
        assert seen == [(7.0, 0), (7.0, 1), (7.0, 2)]


class TestTaxonomy:
    def test_comm_timeout_enum_member(self):
        assert FailureReason.COMM_TIMEOUT.value == "comm_timeout"
        assert FailureReason.COMM_TIMEOUT.is_failure
        assert str(FailureReason.COMM_TIMEOUT) == "COMM_TIMEOUT"

    def test_comm_timeout_exception_payload(self):
        err = CommTimeout("exchange", (1, 2), 3, 1.5)
        assert err.op == "exchange"
        assert err.pending == (1, 2)
        assert err.attempts == 3
        assert "alive but silent" in str(err)
