import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse.bcsr import BCSRMatrix


def random_bcsr(n, nblocks, rng, b=3):
    rows = rng.integers(0, n, nblocks)
    cols = rng.integers(0, n, nblocks)
    blocks = rng.normal(size=(nblocks, b, b))
    return BCSRMatrix.from_coo_blocks(n, rows, cols, blocks, b=b), (rows, cols, blocks)


class TestConstruction:
    def test_diagonal_always_present(self):
        m, _ = random_bcsr(5, 3, np.random.default_rng(0))
        rows = m.block_rows()
        for i in range(5):
            assert ((rows == i) & (m.indices == i)).any()

    def test_duplicates_summed(self):
        blocks = np.ones((2, 3, 3))
        m = BCSRMatrix.from_coo_blocks(2, [0, 0], [1, 1], blocks)
        dense = m.toarray()
        assert np.allclose(dense[0:3, 3:6], 2.0)

    def test_sorted_indices_within_rows(self):
        m, _ = random_bcsr(8, 30, np.random.default_rng(1))
        for i in range(m.n):
            row = m.indices[m.indptr[i] : m.indptr[i + 1]]
            assert np.all(np.diff(row) > 0)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError, match="shape"):
            BCSRMatrix.from_coo_blocks(2, [0], [0], np.ones((1, 2, 2)))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            BCSRMatrix.from_coo_blocks(2, [5], [0], np.ones((1, 3, 3)))

    def test_from_scipy_roundtrip(self):
        rng = np.random.default_rng(2)
        dense = rng.normal(size=(9, 9))
        m = BCSRMatrix.from_scipy(sp.csr_matrix(dense))
        assert np.allclose(m.toarray(), dense)

    def test_from_scipy_rejects_bad_blocksize(self):
        with pytest.raises(ValueError, match="block size"):
            BCSRMatrix.from_scipy(sp.eye(10).tocsr())


class TestOperations:
    def test_matvec_matches_scipy(self):
        rng = np.random.default_rng(3)
        m, _ = random_bcsr(7, 25, rng)
        x = rng.normal(size=m.ndof)
        assert np.allclose(m.matvec(x), m.to_csr() @ x)

    def test_matvec_shape_check(self):
        m, _ = random_bcsr(4, 5, np.random.default_rng(4))
        with pytest.raises(ValueError, match="shape"):
            m.matvec(np.zeros(5))

    def test_diagonal_blocks(self):
        rng = np.random.default_rng(5)
        m, _ = random_bcsr(6, 20, rng)
        dense = m.toarray()
        diag = m.diagonal_blocks()
        for i in range(6):
            assert np.allclose(diag[i], dense[3 * i : 3 * i + 3, 3 * i : 3 * i + 3])

    def test_permuted_is_similarity(self):
        rng = np.random.default_rng(6)
        m, _ = random_bcsr(6, 18, rng)
        perm = rng.permutation(6)
        mp = m.permuted(perm)
        dense = m.toarray()
        dof_perm = (perm[:, None] * 3 + np.arange(3)).reshape(-1)
        assert np.allclose(mp.toarray(), dense[np.ix_(dof_perm, dof_perm)])

    def test_node_adjacency_symmetric_no_selfloops(self):
        m, _ = random_bcsr(6, 18, np.random.default_rng(7))
        g = m.node_adjacency()
        assert (g != g.T).nnz == 0
        assert g.diagonal().sum() == 0

    def test_is_symmetric_detects(self):
        blocks = np.zeros((1, 3, 3))
        blocks[0, 0, 1] = 1.0
        m = BCSRMatrix.from_coo_blocks(2, [0], [1], blocks)
        assert not m.is_symmetric()

    def test_memory_positive(self):
        m, _ = random_bcsr(4, 4, np.random.default_rng(8))
        assert m.memory_bytes() > 0


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(2, 8),
    seed=st.integers(0, 10_000),
)
def test_property_from_coo_equals_scipy(n, seed):
    """BCSR assembly agrees with scipy COO assembly on random triplets."""
    rng = np.random.default_rng(seed)
    k = int(rng.integers(1, 4 * n))
    rows = rng.integers(0, n, k)
    cols = rng.integers(0, n, k)
    blocks = rng.normal(size=(k, 3, 3))
    m = BCSRMatrix.from_coo_blocks(n, rows, cols, blocks)

    ref = np.zeros((3 * n, 3 * n))
    for r, c, blk in zip(rows, cols, blocks):
        ref[3 * r : 3 * r + 3, 3 * c : 3 * c + 3] += blk
    assert np.allclose(m.toarray(), ref)


@settings(max_examples=25, deadline=None)
@given(n=st.integers(2, 8), seed=st.integers(0, 10_000))
def test_property_permutation_roundtrip(n, seed):
    rng = np.random.default_rng(seed)
    m, _ = random_bcsr(n, 3 * n, rng)
    perm = rng.permutation(n)
    iperm = np.empty(n, dtype=int)
    iperm[perm] = np.arange(n)
    back = m.permuted(perm).permuted(iperm)
    assert np.allclose(back.toarray(), m.toarray())
