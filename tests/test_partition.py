import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fem.generators import box_mesh
from repro.fem.model import build_contact_problem
from repro.parallel.partition import build_domains, partition_nodes_rcb


@pytest.fixture(scope="module")
def box_problem():
    return build_contact_problem(box_mesh(4, 4, 4))


class TestRCB:
    def test_partition_complete_and_balanced(self):
        rng = np.random.default_rng(0)
        coords = rng.normal(size=(100, 3))
        part = partition_nodes_rcb(coords, 4)
        counts = np.bincount(part)
        assert counts.sum() == 100
        assert counts.min() >= 20

    def test_non_power_of_two(self):
        coords = np.random.default_rng(1).normal(size=(90, 3))
        part = partition_nodes_rcb(coords, 3)
        counts = np.bincount(part)
        assert counts.size == 3 and counts.min() >= 25

    def test_single_domain(self):
        coords = np.zeros((5, 3))
        assert np.all(partition_nodes_rcb(coords, 1) == 0)

    def test_weights_respected(self):
        coords = np.stack([np.arange(10.0), np.zeros(10), np.zeros(10)], axis=1)
        w = np.ones(10)
        w[0] = 9.0  # heavy point
        part = partition_nodes_rcb(coords, 2, weights=w)
        counts = np.bincount(part)
        # the heavy point's side should carry fewer points
        heavy_side = part[0]
        assert counts[heavy_side] < counts[1 - heavy_side]

    def test_too_many_domains_rejected(self):
        with pytest.raises(ValueError):
            partition_nodes_rcb(np.zeros((3, 3)), 4)

    def test_geometric_locality(self):
        """RCB on a line splits it into contiguous intervals."""
        coords = np.stack([np.arange(16.0), np.zeros(16), np.zeros(16)], axis=1)
        part = partition_nodes_rcb(coords, 4)
        for d in range(4):
            idx = np.flatnonzero(part == d)
            assert idx.max() - idx.min() == idx.size - 1


class TestBuildDomains:
    def test_internal_nodes_partition(self, box_problem):
        part = partition_nodes_rcb(box_problem.mesh.coords, 4)
        domains = build_domains(box_problem.a, part)
        allnodes = np.sort(np.concatenate([d.internal_nodes for d in domains]))
        assert np.array_equal(allnodes, np.arange(box_problem.mesh.n_nodes))

    def test_external_nodes_are_matrix_neighbors(self, box_problem):
        part = partition_nodes_rcb(box_problem.mesh.coords, 4)
        domains = build_domains(box_problem.a, part)
        adj = box_problem.a_bcsr.node_adjacency()
        for dom in domains:
            mask = np.zeros(box_problem.mesh.n_nodes, dtype=bool)
            mask[dom.internal_nodes] = True
            for e in dom.external_nodes:
                nbrs = adj.indices[adj.indptr[e] : adj.indptr[e + 1]]
                assert mask[nbrs].any()
                assert not mask[e]

    def test_comm_tables_are_mirrored(self, box_problem):
        part = partition_nodes_rcb(box_problem.mesh.coords, 4)
        domains = build_domains(box_problem.a, part)
        for d, dom in enumerate(domains):
            for owner, recv in dom.recv_tables.items():
                send = domains[owner].send_tables[d]
                assert send.size == recv.size
                # the sent nodes (global ids) match the received ones
                sent_glob = domains[owner].internal_nodes[send]
                recv_glob = dom.external_nodes[recv - dom.n_internal]
                assert np.array_equal(sent_glob, recv_glob)

    def test_local_matvec_equals_global(self, box_problem):
        """Distributed matvec with exchanged externals == global matvec."""
        part = partition_nodes_rcb(box_problem.mesh.coords, 3)
        domains = build_domains(box_problem.a, part)
        ndof = box_problem.ndof
        rng = np.random.default_rng(2)
        x = rng.normal(size=ndof)
        y_ref = box_problem.a @ x
        for dom in domains:
            loc = np.concatenate([dom.internal_nodes, dom.external_nodes])
            xloc = x[(loc[:, None] * 3 + np.arange(3)).reshape(-1)]
            yloc = dom.a_local @ xloc
            rows = (dom.internal_nodes[:, None] * 3 + np.arange(3)).reshape(-1)
            assert np.allclose(yloc, y_ref[rows])

    def test_empty_domain_rejected(self, box_problem):
        part = np.zeros(box_problem.mesh.n_nodes, dtype=int)
        part[0] = 2  # domain 1 empty
        with pytest.raises(ValueError, match="empty"):
            build_domains(box_problem.a, part)

    def test_boundary_nodes_subset_of_internal(self, box_problem):
        part = partition_nodes_rcb(box_problem.mesh.coords, 4)
        domains = build_domains(box_problem.a, part)
        for dom in domains:
            bn = dom.boundary_nodes
            assert bn.size == 0 or bn.max() < dom.n_internal


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 1000), ndom=st.integers(1, 6))
def test_property_rcb_covers_everything(seed, ndom):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(ndom, 60))
    coords = rng.normal(size=(n, 3))
    part = partition_nodes_rcb(coords, ndom)
    assert part.size == n
    assert set(np.unique(part)) == set(range(ndom))
