"""Cross-module invariants tying the layers together (hypothesis-based)."""

import numpy as np
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fem.generators import simple_block_model
from repro.fem.model import build_contact_problem
from repro.parallel import partition_nodes_rcb
from repro.precond import LocalizedPreconditioner, bic, sb_bic0
from repro.precond.icfact import BlockICFactorization


def spd_block(n_nodes, seed):
    rng = np.random.RandomState(seed)
    m = sp.random(3 * n_nodes, 3 * n_nodes, density=0.2, random_state=rng)
    a = (m + m.T).tocsr()
    a.setdiag(np.asarray(abs(a).sum(axis=1)).reshape(-1) + 1.0)
    a = sp.csr_matrix(a)
    a.sort_indices()
    return a


@settings(max_examples=10, deadline=None)
@given(n_nodes=st.integers(3, 8), seed=st.integers(0, 1000))
def test_localized_apply_is_blockdiag_of_locals(n_nodes, seed):
    """LocalizedPreconditioner(r) == concatenation of the local applies —
    the algebraic identity that makes the sequential runs equal the
    distributed ones."""
    a = spd_block(n_nodes, seed)
    rng = np.random.default_rng(seed)
    part = rng.integers(0, 2, size=n_nodes)
    part[0] = 0
    part[-1] = 1  # both domains non-empty
    lp = LocalizedPreconditioner(a, part, lambda s, n: bic(s, fill_level=0))
    r = rng.normal(size=3 * n_nodes)
    z = lp.apply(r)
    for d in range(2):
        nodes = np.flatnonzero(part == d)
        dofs = (nodes[:, None] * 3 + np.arange(3)).reshape(-1)
        sub = a[dofs][:, dofs].tocsr()
        m_local = bic(sub, fill_level=0)
        assert np.allclose(z[dofs], m_local.apply(r[dofs]), atol=1e-10)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 1000), ncolors=st.integers(0, 8))
def test_apply_m_and_apply_are_mutual_inverses(seed, ncolors):
    a = spd_block(6, seed)
    m = BlockICFactorization(
        a, [np.arange(3 * i, 3 * i + 3) for i in range(6)],
        fill_level=0, ncolors=ncolors,
    )
    v = np.random.default_rng(seed).normal(size=18)
    assert np.allclose(m.apply(m.apply_m(v)), v, atol=1e-7 * max(1.0, np.abs(v).max()))


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 100))
def test_matrix_permutation_invariance_of_convergence(seed):
    """Relabelling the FEM nodes must not change SB-BIC(0) CG behaviour
    beyond round-off: same iteration count (+-2), same solution."""
    from repro.solvers.cg import cg_solve

    mesh = simple_block_model(2, 2, 2, 2, 2)
    prob = build_contact_problem(mesh, penalty=1e5)
    rng = np.random.default_rng(seed)
    perm_nodes = rng.permutation(mesh.n_nodes)
    dof_perm = (perm_nodes[:, None] * 3 + np.arange(3)).reshape(-1)
    a2 = prob.a[dof_perm][:, dof_perm].tocsr()
    b2 = prob.b[dof_perm]
    inv = np.empty(mesh.n_nodes, dtype=int)
    inv[perm_nodes] = np.arange(mesh.n_nodes)
    groups2 = [np.sort(inv[g]) for g in prob.groups]

    r1 = cg_solve(prob.a, prob.b, sb_bic0(prob.a, prob.groups))
    r2 = cg_solve(a2, b2, sb_bic0(a2, groups2))
    assert r1.converged and r2.converged
    assert abs(r1.iterations - r2.iterations) <= max(3, 0.1 * r1.iterations)
    assert np.allclose(r2.x, r1.x[dof_perm], atol=1e-5 * np.abs(r1.x).max())


@settings(max_examples=10, deadline=None)
@given(ndom=st.integers(2, 5), seed=st.integers(0, 1000))
def test_rcb_deterministic(ndom, seed):
    coords = np.random.default_rng(seed).normal(size=(40, 3))
    p1 = partition_nodes_rcb(coords, ndom)
    p2 = partition_nodes_rcb(coords, ndom)
    assert np.array_equal(p1, p2)
