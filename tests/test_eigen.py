import numpy as np
import pytest
import scipy.sparse as sp

from repro.analysis import preconditioned_spectrum
from repro.analysis.memory import memory_report
from repro.fem.model import build_contact_problem
from repro.precond import DiagonalScaling, bic, sb_bic0


class TestSpectrum:
    def test_identity_preconditioner_on_diagonal_matrix(self):
        d = np.array([1.0, 2.0, 4.0])
        a = sp.diags(d).tocsr()
        m = DiagonalScaling(a)
        s = preconditioned_spectrum(a, m)
        # M = diag(A) exactly -> all eigenvalues of M^-1 A are 1
        assert np.isclose(s.emin, 1.0) and np.isclose(s.emax, 1.0)
        assert np.isclose(s.kappa, 1.0)

    def test_diag_scaling_known_spectrum(self):
        a = sp.csr_matrix(np.array([[2.0, 1.0], [1.0, 2.0]]))
        s = preconditioned_spectrum(a, DiagonalScaling(a))
        assert np.isclose(s.emin, 0.5)
        assert np.isclose(s.emax, 1.5)

    def test_ic_clusters_near_one(self, block_problem_small):
        p = block_problem_small
        s = preconditioned_spectrum(p.a, bic(p.a, fill_level=1), dense_threshold=2000)
        assert 0.05 < s.emin < 1.5
        assert 0.5 < s.emax < 3.0

    def test_kappa_lambda_scaling_bic0(self, block_mesh_small):
        kappas = []
        for lam in (1e2, 1e6):
            prob = build_contact_problem(block_mesh_small, penalty=lam)
            s = preconditioned_spectrum(prob.a, bic(prob.a, fill_level=0), dense_threshold=2000)
            kappas.append(s.kappa)
        assert kappas[1] > 1e3 * kappas[0]

    def test_sb_kappa_flat(self, block_mesh_small):
        kappas = []
        for lam in (1e2, 1e6):
            prob = build_contact_problem(block_mesh_small, penalty=lam)
            m = sb_bic0(prob.a, prob.groups)
            s = preconditioned_spectrum(prob.a, m, dense_threshold=2000)
            kappas.append(s.kappa)
        assert 0.3 < kappas[1] / kappas[0] < 3.0

    def test_lanczos_path_agrees_with_dense(self, block_problem_small):
        p = block_problem_small
        m = sb_bic0(p.a, p.groups)
        dense = preconditioned_spectrum(p.a, m, dense_threshold=10**9)
        lanczos = preconditioned_spectrum(p.a, m, dense_threshold=0)
        assert np.isclose(dense.emax, lanczos.emax, rtol=1e-3)
        assert np.isclose(dense.emin, lanczos.emin, rtol=1e-2)

    def test_unsupported_preconditioner(self):
        from repro.precond.base import IdentityPreconditioner

        a = sp.eye(3).tocsr()
        with pytest.raises(TypeError):
            preconditioned_spectrum(a, IdentityPreconditioner())

    def test_repr(self):
        a = sp.eye(3).tocsr()
        s = preconditioned_spectrum(a, DiagonalScaling(a))
        assert "kappa" in repr(s)


class TestMemoryReport:
    def test_report_structure(self, block_problem_small):
        p = block_problem_small
        rep = memory_report(
            p.a_bcsr,
            {"BIC(0)": bic(p.a, fill_level=0), "SB-BIC(0)": sb_bic0(p.a, p.groups)},
        )
        assert set(rep) == {"matrix", "BIC(0)", "SB-BIC(0)"}
        assert all(v > 0 for v in rep.values())

    def test_no_matrix(self, block_problem_small):
        rep = memory_report(None, {"d": DiagonalScaling(block_problem_small.a)})
        assert "matrix" not in rep
