"""The solver policy layer: probes, cost ranking, history, decisions.

Four layers of coverage:

- probes: fingerprint stability and the penalty-recovery trick
  (``diag_max / diag_median`` sees the MPC penalty without being told);
- cost model: applicability, ranking order, and the Table 2-shaped
  priors (selective blocking out-ranks plain BIC at high penalty, the
  cost ranking degrades gracefully to diag on group-free problems);
- history: record/best/score semantics, failure inflation, merge and
  save/load round-trips, obs-record ingestion;
- policy: all three modes end to end through ``ladder()`` +
  :class:`~repro.resilience.resilient.ResilientSolver`, the Diagonal
  backstop invariant, serve-session ``precond="auto"`` resolution and
  journal-side persistence, the ``policy_table`` exporter, and the CLI
  entry points.
"""

import json

import numpy as np
import pytest

from repro import obs
from repro.experiments.workloads import block_problem, homogeneous_box_problem
from repro.policy import (
    FAMILIES,
    OutcomeStats,
    PolicyDecision,
    PolicyHistory,
    ProblemProbe,
    SolverPolicy,
    applicable_families,
    candidate_costs,
    family_of_stage,
    probe_problem,
)
from repro.resilience.resilient import ResilientSolver
from repro.serve import JobQueue, SolveRequest, SolverSession


@pytest.fixture(scope="module")
def contact():
    """One penalized contact problem shared across the module."""
    return block_problem(0.4, 1.0e6)


@pytest.fixture(scope="module")
def box():
    """A group-free problem — the 'default ladder is wrong here' case."""
    return homogeneous_box_problem(6)


def make_probe(**over):
    """A hand-built probe for cost-model tests with controlled knobs."""
    base = dict(
        ndof=3000, nnz=200_000, block_ok=True, n_groups=4, max_group=40,
        group_dofs=480, diag_median=1.0, diag_max=1.0e6, penalty_ratio=1.0e6,
        kappa_scaled=1.0e8, probe_seconds=0.0,
    )
    base.update(over)
    return ProblemProbe(**base)


class TestProbe:
    def test_fingerprint_is_stable_across_reprobes(self, contact):
        p1 = probe_problem(contact.a, contact.groups)
        p2 = probe_problem(contact.a, contact.groups)
        assert p1.fingerprint() == p2.fingerprint()
        assert p1.fingerprint().startswith("v1:")

    def test_probe_recovers_penalty_from_the_diagonal(self, contact, box):
        p = probe_problem(contact.a, contact.groups)
        assert p.penalty_ratio > 1.0e3  # lambda = 1e6 rows dominate diag
        q = probe_problem(box.a, box.groups)
        assert q.penalty_ratio < 1.0e3
        assert q.n_groups == 0

    def test_probe_census_matches_problem(self, contact):
        p = probe_problem(contact.a, contact.groups)
        assert p.ndof == contact.ndof
        assert p.block_ok
        assert p.n_groups == len(contact.groups)
        assert p.kappa_scaled > 1.0
        assert np.isfinite(p.kappa_scaled)

    def test_penalty_shifts_fingerprint_class(self):
        lo = make_probe(penalty_ratio=10.0)
        hi = make_probe(penalty_ratio=1.0e8)
        assert lo.fingerprint() != hi.fingerprint()


class TestCostModel:
    def test_applicable_families(self):
        assert applicable_families(make_probe()) == ("sbbic0", "bic0", "diag")
        assert applicable_families(make_probe(n_groups=0)) == ("bic0", "diag")
        assert applicable_families(make_probe(block_ok=False)) == ("ic0", "diag")

    def test_costs_sorted_cheapest_first(self):
        costs = candidate_costs(make_probe())
        totals = [c.predicted_seconds for c in costs]
        assert totals == sorted(totals)
        assert {c.family for c in costs} <= set(FAMILIES)

    def test_selective_blocking_wins_at_high_penalty(self):
        """Table 2's shape: at lambda ~ 1e6+ the penalty-absorbing family
        must out-rank plain BIC(0), whose kappa_eff keeps the penalty."""
        probe = make_probe(penalty_ratio=1.0e8, kappa_scaled=1.0e10)
        ranked = [c.family for c in candidate_costs(probe)]
        assert ranked.index("sbbic0") < ranked.index("bic0")

    def test_risk_inflates_fragile_families(self):
        probe = make_probe(penalty_ratio=1.0e8, block_ok=False, n_groups=0)
        by_family = {c.family: c for c in candidate_costs(probe)}
        assert by_family["ic0"].risk > 1.0
        assert by_family["diag"].risk == 1.0

    def test_predicted_iterations_track_kappa(self):
        tame = candidate_costs(make_probe(kappa_scaled=1.0e2, penalty_ratio=1.0))
        wild = candidate_costs(make_probe(kappa_scaled=1.0e10, penalty_ratio=1.0))
        tame_d = {c.family: c.predicted_iterations for c in tame}
        wild_d = {c.family: c.predicted_iterations for c in wild}
        for fam in tame_d:
            assert wild_d[fam] >= tame_d[fam]


class TestHistory:
    def test_record_and_best(self):
        h = PolicyHistory()
        assert h.best("fp") is None
        h.record("fp", "bic0", seconds=2.0, converged=True)
        h.record("fp", "sbbic0", seconds=1.0, converged=True)
        assert h.best("fp") == "sbbic0"
        assert len(h) == 1

    def test_failures_inflate_the_score(self):
        h = PolicyHistory()
        h.record("fp", "fast_flaky", seconds=1.0, converged=False)
        h.record("fp", "slow_solid", seconds=3.0, converged=True)
        # 1.0 * (1 + 4 * 1.0) = 5.0 > 3.0: reliability beats raw speed
        assert h.best("fp") == "slow_solid"
        stats = h.stats_for("fp")["fast_flaky"]
        assert stats.failure_rate == 1.0
        assert stats.score == pytest.approx(5.0)

    def test_min_runs_filter(self):
        h = PolicyHistory()
        h.record("fp", "bic0", seconds=1.0, converged=True)
        assert h.best("fp", min_runs=2) is None

    def test_merge_is_additive(self):
        h1, h2 = PolicyHistory(), PolicyHistory()
        h1.record("fp", "bic0", seconds=1.0, converged=True, iterations=10)
        h2.record("fp", "bic0", seconds=3.0, converged=False, iterations=30)
        h1.merge_dict(h2.to_dict())
        stats = h1.stats_for("fp")["bic0"]
        assert stats.runs == 2
        assert stats.failures == 1
        assert stats.total_seconds == pytest.approx(4.0)
        assert stats.total_iterations == 40

    def test_save_load_roundtrip(self, tmp_path):
        h = PolicyHistory()
        h.record("fp", "diag", seconds=0.5, converged=True, iterations=7)
        assert h.dirty
        path = tmp_path / "hist.json"
        h.save(path)
        assert not h.dirty
        loaded = PolicyHistory.load(path)
        assert not loaded.dirty
        assert loaded.to_dict() == h.to_dict()
        assert PolicyHistory.load(tmp_path / "missing.json").to_dict() == {
            "version": 1, "outcomes": {},
        }

    def test_ingest_obs_records(self):
        h = PolicyHistory()
        records = [
            {"kind": "span", "name": "policy.outcome", "duration_s": 1.5,
             "attrs": {"fingerprint": "fp", "choice": "sbbic0",
                       "converged": True, "iterations": 12}},
            {"kind": "span", "name": "policy.decide", "duration_s": 0.1,
             "attrs": {"fingerprint": "fp"}},  # not an outcome: skipped
            {"kind": "span", "name": "policy.outcome", "duration_s": 0.2,
             "attrs": {}},  # no fingerprint/choice: skipped
        ]
        assert h.ingest_records(records) == 1
        stats = h.stats_for("fp")["sbbic0"]
        assert stats.runs == 1
        assert stats.total_iterations == 12

    def test_outcome_stats_roundtrip(self):
        st = OutcomeStats(runs=3, failures=1, total_seconds=6.0,
                          total_iterations=90)
        assert OutcomeStats.from_dict(st.to_dict()) == st
        assert st.mean_seconds == pytest.approx(2.0)


class TestFamilyOfStage:
    @pytest.mark.parametrize("stage,family", [
        ("SB-BIC(0)", "sbbic0"),
        ("BIC(0)", "bic0"),
        ("BIC(0)+shift0.01", "bic0"),
        ("IC(0) scalar", "ic0"),
        ("IC(0)+shift0.1", "ic0"),
        ("Diagonal", "diag"),
        ("sbbic0", "sbbic0"),  # serve-protocol names pass through
        ("diag", "diag"),
        ("Mystery", None),
    ])
    def test_mapping(self, stage, family):
        assert family_of_stage(stage) == family


class TestSolverPolicy:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown policy mode"):
            SolverPolicy("vibes")

    def test_static_mode_matches_paper_ladder(self, contact):
        policy = SolverPolicy("static")
        decision = policy.decide(contact.a, contact.groups)
        assert decision.probe is None
        assert decision.order == ("sbbic0", "bic0", "diag")
        stages, _ = policy.ladder(contact.a, contact.groups, decision=decision)
        names = [s.name for s in stages]
        assert names[0] == "SB-BIC(0)"
        assert names[-1] == "Diagonal"

    def test_probe_cache_hits_by_key(self, contact):
        policy = SolverPolicy("cost")
        p1 = policy.probe(contact.a, contact.groups, cache_key="k")
        p2 = policy.probe(contact.a, contact.groups, cache_key="k")
        assert p1 is p2
        p3 = policy.probe(contact.a, contact.groups)  # no key: fresh probe
        assert p3 is not p1

    def test_learned_mode_leads_with_recorded_best(self, contact):
        history = PolicyHistory()
        policy = SolverPolicy("learned", history=history)
        cold = policy.decide(contact.a, contact.groups, cache_key="c")
        assert "no history" in cold.source
        fp = cold.fingerprint
        history.record(fp, "diag", seconds=0.1, converged=True)
        for fam in cold.order:
            if fam != "diag":
                history.record(fp, fam, seconds=9.0, converged=True)
        warm = policy.decide(contact.a, contact.groups, cache_key="c")
        assert warm.order[0] == "diag"
        assert "recorded history" in warm.source
        # the tail keeps every other applicable family: never narrowed
        assert set(warm.order) == set(cold.order)

    def test_ladder_always_ends_in_diagonal(self, contact, box):
        """The unbreakable backstop: last rung is Diagonal no matter how
        the order was ranked.  A diag-led ladder may retry Diagonal at
        the end (warm restart makes that retry meaningful), but never
        back to back."""
        policy = SolverPolicy("cost")
        for prob in (contact, box):
            stages, _ = policy.ladder(prob.a, prob.groups)
            names = [s.name for s in stages]
            assert names[-1] == "Diagonal"
            assert all(
                not (a == b == "Diagonal") for a, b in zip(names, names[1:])
            )

    def test_ladder_skips_sbbic_without_groups(self, box):
        policy = SolverPolicy("cost")
        decision = PolicyDecision(
            mode="cost", order=("sbbic0", "bic0", "diag"), shifts=(0.01,),
            ncolors=0, checkpoint_interval=100, probe=None,
        )
        stages, _ = policy.ladder(box.a, box.groups, decision=decision)
        assert all(s.name != "SB-BIC(0)" for s in stages)

    def test_shift_rungs_share_one_factorization(self, contact):
        """The second BIC rung must refactor the first rung's object in
        place (the shared-cache contract of ``default_ladder``)."""
        policy = SolverPolicy("cost")
        decision = PolicyDecision(
            mode="cost", order=("bic0", "diag"), shifts=(0.01, 0.1),
            ncolors=0, checkpoint_interval=100, probe=None,
        )
        stages, _ = policy.ladder(contact.a, contact.groups, decision=decision)
        by_name = {s.name: s for s in stages}
        m_plain = by_name["BIC(0)"].build()
        m_shift = by_name["BIC(0)+shift0.01"].build()
        assert m_shift is m_plain  # refactored, not re-allocated
        assert m_shift.name == "BIC(0)+shift0.01"

    def test_end_to_end_solve_records_history(self, contact):
        history = PolicyHistory()
        policy = SolverPolicy("cost", history=history)
        stages, decision = policy.ladder(contact.a, contact.groups)
        res = ResilientSolver(
            contact.a, stages,
            on_stage_result=lambda name, r: policy.record_outcome(
                decision, name,
                seconds=r.solve_seconds, converged=r.converged,
                iterations=r.iterations,
            ),
        ).solve(contact.b)
        assert res.converged
        assert history.best(decision.fingerprint) is not None

    def test_static_outcomes_are_not_recorded(self, contact):
        history = PolicyHistory()
        policy = SolverPolicy("static", history=history)
        decision = policy.decide(contact.a, contact.groups)
        policy.record_outcome(decision, "BIC(0)", seconds=1.0, converged=True)
        assert len(history) == 0  # no probe, no fingerprint, nothing learned

    def test_explain_names_the_evidence(self, contact):
        policy = SolverPolicy("cost")
        decision = policy.decide(contact.a, contact.groups)
        text = decision.explain()
        assert decision.fingerprint in text
        assert "ladder order" in text
        assert "predicted costs" in text
        d = decision.to_dict()
        assert d["order"] == list(decision.order)
        assert d["fingerprint"] == decision.fingerprint


class TestServeIntegration:
    def _req(self, job_id, penalty=1.0e4):
        return SolveRequest(job_id=job_id, model="block", scale=0.4,
                            penalty=penalty, precond="auto", rhs="model")

    def test_auto_precond_resolves_and_solves(self):
        session = SolverSession(warm_kernels=False)
        resp = session.solve(self._req("auto-1"))
        assert resp.ok and resp.converged
        assert len(session.workspace.policy_history) >= 1
        stats = session.stats()
        assert stats["policy"]["mode"] == "learned"
        assert stats["policy"]["history_classes"] >= 1

    def test_static_policy_mode_session(self):
        session = SolverSession(warm_kernels=False, policy_mode="static")
        resp = session.solve(self._req("auto-static"))
        assert resp.ok and resp.converged
        assert session.stats()["policy"]["mode"] == "static"

    def test_queue_persists_history_next_to_journal(self, tmp_path):
        q = JobQueue(session=SolverSession(warm_kernels=False),
                     journal_dir=tmp_path)
        q.submit(self._req("persist-1"))
        jobs = q.process()
        assert jobs and jobs[0].response.ok
        hist_path = tmp_path / "policy_history.json"
        assert hist_path.exists()
        doc = json.loads(hist_path.read_text())
        assert doc["outcomes"]  # at least one recorded class

        # a fresh queue over the same journal dir starts warm
        q2 = JobQueue(session=SolverSession(warm_kernels=False),
                      journal_dir=tmp_path)
        assert len(q2.session.workspace.policy_history) >= 1
        q2.submit(self._req("persist-2"))
        assert q2.process()[0].response.ok


class TestPolicyTableExporter:
    def test_empty_trace(self):
        assert obs.policy_table([]) == "(no policy spans in trace)"

    def test_tables_from_flat_records(self):
        records = [
            {"kind": "span", "name": "policy.decide", "duration_s": 0.01,
             "t_start_s": 0.0,
             "attrs": {"fingerprint": "v1:n3", "mode": "learned",
                       "order": "diag->bic0", "source": "recorded history"}},
            {"kind": "span", "name": "policy.outcome", "duration_s": 0.5,
             "t_start_s": 0.1,
             "attrs": {"fingerprint": "v1:n3", "choice": "diag",
                       "stage": "Diagonal", "converged": True,
                       "iterations": 42}},
        ]
        text = obs.policy_table(records)
        assert "v1:n3" in text
        assert "diag->bic0" in text
        assert "Diagonal" in text
        assert "recorded history" in text

    def test_live_policy_emits_consumable_spans(self, contact, tmp_path):
        from repro.obs.export import export_jsonl, load_jsonl_records

        with obs.observe() as sess:
            policy = SolverPolicy("cost")
            decision = policy.decide(contact.a, contact.groups)
            policy.record_outcome(decision, "Diagonal", seconds=0.1,
                                  converged=True, iterations=5)
            text = obs.policy_table(sess.tracer)
        assert decision.fingerprint in text
        # the exported trace round-trips into a fresh history
        path = export_jsonl(sess.tracer, tmp_path / "trace.jsonl")
        h = PolicyHistory()
        assert h.ingest_records(load_jsonl_records(path)) == 1
        assert h.best(decision.fingerprint) == "diag"


class TestCli:
    def test_policy_explain(self, capsys):
        from repro.cli import main
        assert main(["policy", "explain", "--model", "block",
                     "--scale", "0.4", "--penalty", "1e6"]) == 0
        out = capsys.readouterr().out
        assert "ladder order" in out
        assert "fingerprint" in out

    def test_solve_with_policy_and_history(self, tmp_path, capsys):
        from repro.cli import main
        hist = tmp_path / "hist.json"
        code = main(["solve", "--model", "block", "--scale", "0.4",
                     "--penalty", "1e4", "--policy", "cost",
                     "--policy-history", str(hist)])
        assert code == 0
        assert hist.exists()
        assert json.loads(hist.read_text())["outcomes"]
        # second run loads the saved history through learned mode
        assert main(["solve", "--model", "block", "--scale", "0.4",
                     "--penalty", "1e4", "--policy", "learned",
                     "--policy-history", str(hist)]) == 0
        assert "policy" in capsys.readouterr().out
