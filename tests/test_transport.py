"""Real-process transport: parity, determinism, census, genuine failures.

Everything here runs against real forked worker processes (the
``process`` transport), checked against the lockstep emulation as the
reference.  The two headline contracts:

- **determinism gate**: a 4-domain ``parallel_cg`` produces bit-identical
  ``x``, iteration count and allreduce census on ``lockstep`` and
  ``process`` transports — the fixed rank-ordered reduction at the pipe
  tree's root makes the fabrics interchangeable;
- **genuine failures**: a SIGKILLed worker is a dead OS process (not a
  flag), a wedged worker really sleeps through the deadline budget, and
  recovery must reproduce the undisturbed run bit-for-bit.
"""

import json
import pickle
from collections import deque

import numpy as np
import pytest

from repro.fem.generators import simple_block_model
from repro.fem.model import build_contact_problem
from repro.obs import merge_rank_traces
from repro.parallel import (
    DistributedSystem,
    LockstepComm,
    parallel_cg,
    partition_nodes_rcb,
)
from repro.parallel.comm import CommLog
from repro.parallel.transport import (
    ProcessTransport,
    TransportPolicy,
    registry,
)
from repro.precond import DiagonalScaling, bic
from repro.resilience import FailureReason, SolveReport


@pytest.fixture(scope="module")
def problem():
    mesh = simple_block_model(3, 3, 2, 3, 3)
    return build_contact_problem(mesh, penalty=1e4), mesh


@pytest.fixture(scope="module")
def part(problem):
    _, mesh = problem
    return partition_nodes_rcb(mesh.coords, 4)


def _factory(sub, nodes):
    return bic(sub, fill_level=0)


@pytest.fixture(scope="module")
def lockstep_ref(problem, part):
    prob, _ = problem
    system = DistributedSystem.from_global(prob.a, prob.b, part, _factory)
    res = parallel_cg(system)
    assert res.converged
    return system, res


def _process_system(problem, part, **opts):
    prob, _ = problem
    return DistributedSystem.from_global(
        prob.a, prob.b, part, _factory, transport="process",
        transport_opts=opts,
    )


@pytest.fixture(autouse=True)
def _reset_registry():
    registry.reset()
    yield
    registry.reset()


# -- registry ------------------------------------------------------------


class TestRegistry:
    def test_lockstep_and_process_available(self):
        avail = registry.available_transports()
        assert "lockstep" in avail and "process" in avail

    def test_default_is_lockstep(self, monkeypatch):
        monkeypatch.delenv(registry.ENV_VAR, raising=False)
        assert registry.resolve_name() == "lockstep"

    def test_env_var_selects(self, monkeypatch):
        monkeypatch.setenv(registry.ENV_VAR, "process")
        assert registry.resolve_name() == "process"

    def test_set_transport_beats_env(self, monkeypatch):
        monkeypatch.setenv(registry.ENV_VAR, "process")
        assert registry.set_transport("lockstep") == "lockstep"
        assert registry.resolve_name() == "lockstep"
        registry.set_transport(None)
        assert registry.resolve_name() == "process"

    def test_explicit_arg_beats_all(self, monkeypatch):
        monkeypatch.setenv(registry.ENV_VAR, "process")
        registry.set_transport("process")
        assert registry.resolve_name("lockstep") == "lockstep"

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown transport"):
            registry.resolve_name("carrier-pigeon")

    def test_mpi_without_mpi4py_falls_back_with_one_warning(self, caplog):
        try:
            import mpi4py  # noqa: F401

            pytest.skip("mpi4py present; fallback path not reachable")
        except ImportError:
            pass
        with caplog.at_level("WARNING", logger="repro.parallel.transport"):
            assert registry.resolve_name("mpi") == "lockstep"
            assert registry.resolve_name("mpi") == "lockstep"
        warnings = [r for r in caplog.records if "falling back" in r.message]
        assert len(warnings) == 1  # warn-once

    def test_create_transport_types(self, problem, part):
        prob, _ = problem
        from repro.parallel.partition import build_domains

        domains = build_domains(prob.a, part)
        comm = registry.create_transport(domains)
        assert isinstance(comm, LockstepComm)
        proc = registry.create_transport(domains, "process")
        try:
            assert isinstance(proc, ProcessTransport)
        finally:
            proc.close()

    def test_describe(self, monkeypatch):
        monkeypatch.setenv(registry.ENV_VAR, "process")
        info = registry.describe()
        assert info["env"] == "process"
        assert info["active"] == "process"
        assert "lockstep" in info["available"]


# -- parity + determinism -----------------------------------------------


class TestParity:
    def test_single_exchange_matches_lockstep(self, problem, part):
        prob, _ = problem
        system = _process_system(problem, part)
        try:
            ref_comm = LockstepComm(system.domains)
            rng = np.random.default_rng(3)
            vecs_p = [
                rng.standard_normal(d.n_local * d.b) for d in system.domains
            ]
            vecs_l = [v.copy() for v in vecs_p]
            system.comm.exchange_external(vecs_p)
            ref_comm.exchange_external(vecs_l)
            for vp, vl in zip(vecs_p, vecs_l):
                assert np.array_equal(vp, vl)
            assert system.comm.halo_mismatch(vecs_p) == 0.0
        finally:
            system.close()

    def test_allreduce_matches_lockstep_bitwise(self, problem, part):
        system = _process_system(problem, part)
        try:
            ref_comm = LockstepComm(system.domains)
            rng = np.random.default_rng(11)
            contribs = [rng.standard_normal(2) for _ in system.domains]
            got = system.comm.allreduce_sum_vec([c.copy() for c in contribs])
            want = ref_comm.allreduce_sum_vec([c.copy() for c in contribs])
            assert np.array_equal(got, want)
            scal = [float(c[0]) for c in contribs]
            assert system.comm.allreduce_sum(scal) == ref_comm.allreduce_sum(
                scal
            )
        finally:
            system.close()

    def test_determinism_gate_4_domains(self, problem, part, lockstep_ref):
        """THE gate: bit-identical x, iterations and allreduce census."""
        sys_l, res_l = lockstep_ref
        sys_p = _process_system(problem, part)
        try:
            res_p = parallel_cg(sys_p)
            assert res_p.converged
            assert res_p.iterations == res_l.iterations
            assert np.array_equal(res_p.x, res_l.x)
            assert sys_p.comm_log.n_allreduce == sys_l.comm_log.n_allreduce
            assert sys_p.comm_log.n_messages == sys_l.comm_log.n_messages
            assert sys_p.comm_log.bytes_sent == sys_l.comm_log.bytes_sent
        finally:
            sys_p.close()

    def test_from_global_env_var_route(self, problem, part, monkeypatch):
        prob, _ = problem
        monkeypatch.setenv(registry.ENV_VAR, "process")
        system = DistributedSystem.from_global(prob.a, prob.b, part, _factory)
        try:
            assert isinstance(system.comm, ProcessTransport)
        finally:
            system.close()


# -- CommLog merge (per-worker census -> aggregate) ----------------------


class TestCommLogMerge:
    def test_merged_worker_census_equals_driver(self, problem, part):
        system = _process_system(problem, part)
        try:
            res = parallel_cg(system, max_iter=30)
            merged = system.comm.merged_worker_log()
            driver = system.comm_log
            assert merged.n_messages == driver.n_messages
            assert merged.bytes_sent == driver.bytes_sent
            assert merged.n_allreduce == driver.n_allreduce
            assert merged.max_neighbor_count == driver.max_neighbor_count
            assert list(merged.per_exchange_bytes) == list(
                driver.per_exchange_bytes
            )
        finally:
            system.close()

    def test_commlog_picklable(self):
        log = CommLog(rank=2)
        log.record_exchange([24, 48])
        log.record_allreduce()
        clone = pickle.loads(pickle.dumps(log))
        assert clone.rank == 2
        assert clone.n_messages == 2
        assert clone.bytes_sent == 72
        assert list(clone.per_exchange_bytes) == [72]

    def test_merge_rules(self):
        a = CommLog(rank=0)
        a.record_exchange([10])
        a.record_exchange([20])
        a.record_allreduce()
        a.record_allreduce()
        a.max_neighbor_count = 2
        b = CommLog(rank=1)
        b.record_exchange([5])
        b.record_exchange([7])
        b.record_allreduce()
        b.record_allreduce()
        b.max_neighbor_count = 3
        a.merge(b)
        assert a.n_messages == 4  # edges are disjoint: summed
        assert a.bytes_sent == 42
        assert a.n_allreduce == 2  # collectives are replicated: max
        assert a.max_neighbor_count == 3  # max survives the merge
        assert list(a.per_exchange_bytes) == [15, 27]
        assert a.rank is None  # merged censuses are aggregates

    def test_merge_aligns_at_most_recent(self):
        a = CommLog()
        for size in (10, 20, 30):
            a.record_exchange([size])
        b = CommLog()
        b.record_exchange([1])
        a.merge(b)
        # shorter series zero-pads at the OLD end (drop-oldest retention)
        assert list(a.per_exchange_bytes) == [10, 20, 31]

    def test_merge_respects_retention(self):
        a = CommLog(per_exchange_bytes=deque(maxlen=2))
        for size in (10, 20, 30):
            a.record_exchange([size])
        b = CommLog()
        b.record_exchange([1])
        a.merge(b)
        assert a.per_exchange_bytes.maxlen == 2
        assert list(a.per_exchange_bytes) == [20, 31]


# -- genuine failures ----------------------------------------------------


class TestRealFailures:
    def test_sigkill_detected_recovered_bit_exact(
        self, problem, part, lockstep_ref
    ):
        _, ref = lockstep_ref
        system = _process_system(
            problem, part, policy=TransportPolicy(deadline=3.0, max_retries=1)
        )
        try:
            system.enable_recovery()
            system.comm.inject_kill(2, at_exchange=6)
            report = SolveReport()
            res = parallel_cg(system, checkpoint_interval=4, report=report)
            assert res.converged
            assert system.comm.kills == [{"rank": 2, "exchange": 6}]
            assert len(system.comm.revivals) == 1
            assert res.rollbacks >= 1
            assert any(
                e.reason is FailureReason.RANK_FAILURE
                for e in report.detections()
            )
            assert np.array_equal(res.x, ref.x)  # bit-exact recovery
            # the replacement worker is a live OS process again
            assert all(
                pid is not None for pid in system.comm.worker_pids()
            )
            assert system.comm.heartbeat() == {0: 0, 1: 1, 2: 2, 3: 3}
        finally:
            system.close()

    def test_sigkill_without_recovery_store_fails_fast(self, problem, part):
        system = _process_system(
            problem, part, policy=TransportPolicy(deadline=2.0, max_retries=0)
        )
        try:
            system.comm.inject_kill(1, at_exchange=3)
            res = parallel_cg(system)  # no checkpointing, no recovery
            assert not res.converged
            assert res.reason is FailureReason.RANK_FAILURE
        finally:
            system.close()

    def test_wedged_worker_comm_timeout_rollback(
        self, problem, part, lockstep_ref
    ):
        _, ref = lockstep_ref
        policy = TransportPolicy(deadline=0.5, max_retries=1, backoff=0.05)
        system = _process_system(problem, part, policy=policy)
        try:
            system.comm.inject_worker_fault(
                1, exchange=6, delay=3 * policy.budget()
            )
            report = SolveReport()
            res = parallel_cg(system, checkpoint_interval=4, report=report)
            assert res.converged
            assert any(
                e.reason is FailureReason.COMM_TIMEOUT
                for e in report.detections()
            )
            assert res.rollbacks >= 1
            assert system.comm.timeout_count >= 1
            assert np.array_equal(res.x, ref.x)
            # nobody died and nobody was respawned
            assert system.comm.kills == [] and system.comm.revivals == []
        finally:
            system.close()

    def test_slow_but_alive_absorbed(self, problem, part, lockstep_ref):
        """A delay inside one deadline is not a solver-visible failure."""
        _, ref = lockstep_ref
        system = _process_system(
            problem, part, policy=TransportPolicy(deadline=5.0, max_retries=2)
        )
        try:
            system.comm.inject_worker_fault(0, exchange=4, delay=0.8)
            report = SolveReport()
            res = parallel_cg(system, checkpoint_interval=4, report=report)
            assert res.converged
            assert report.detections() == []
            assert res.rollbacks == 0
            assert np.array_equal(res.x, ref.x)
        finally:
            system.close()

    @pytest.mark.parametrize("kind", ["nan", "bitflip"])
    def test_corrupted_halo_checksum_piggyback(
        self, problem, part, lockstep_ref, kind
    ):
        """The checksum rides the exchange replies: corruption in a
        worker's received ghost values must trip COMM_FAULT end-to-end
        without the driver ever peeking at owner buffers."""
        _, ref = lockstep_ref
        system = _process_system(problem, part)
        try:
            system.comm.inject_worker_fault(1, exchange=5, corrupt=kind)
            report = SolveReport()
            res = parallel_cg(system, checkpoint_interval=4, report=report)
            assert res.converged
            assert any(
                e.reason is FailureReason.COMM_FAULT
                for e in report.detections()
            )
            assert np.array_equal(res.x, ref.x)
        finally:
            system.close()


# -- lifecycle + observability -------------------------------------------


class TestLifecycle:
    def test_close_idempotent_and_context_manager(self, problem, part):
        with _process_system(problem, part) as system:
            assert isinstance(system.comm, ProcessTransport)
        system.close()  # second close is a no-op
        for pid_alive in [
            p.is_alive() for p in system.comm._procs if p is not None
        ]:
            assert not pid_alive

    def test_invalid_injection_args(self, problem, part):
        system = _process_system(problem, part)
        try:
            with pytest.raises(ValueError, match="outside"):
                system.comm.inject_kill(99, at_exchange=0)
            with pytest.raises(ValueError, match="corruption"):
                system.comm.inject_worker_fault(0, 1, corrupt="gamma-ray")
        finally:
            system.close()

    def test_per_rank_traces_and_merge(self, problem, part, tmp_path):
        system = _process_system(problem, part, trace_dir=tmp_path)
        try:
            parallel_cg(system, max_iter=10)
        finally:
            system.close()
        files = sorted(tmp_path.glob("trace.rank*.jsonl"))
        assert len(files) == 4
        for r, f in enumerate(files):
            recs = [json.loads(line) for line in f.read_text().splitlines()]
            meta = [x for x in recs if x["kind"] == "meta"]
            assert len(meta) == 1 and meta[0]["rank"] == r
            spans = [x for x in recs if x["kind"] == "span"]
            assert spans and all(x["rank"] == r for x in spans)
            assert {x["name"] for x in spans} == {"halo_exchange"}
            assert all(x["attrs"]["rank"] == r for x in spans)
        merged = merge_rank_traces(files, tmp_path / "merged.json")
        doc = json.loads(merged.read_text())
        events = doc["traceEvents"]
        lanes = {e["pid"] for e in events if e["ph"] == "X"}
        assert lanes == {0, 1, 2, 3}
        names = {
            e["args"]["name"] for e in events if e["ph"] == "M"
        }
        assert names == {"rank 0", "rank 1", "rank 2", "rank 3"}
