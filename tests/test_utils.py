import time

import numpy as np
import pytest
import scipy.sparse as sp

from repro.utils import Timer, check_index_array, check_permutation, check_square_csr, check_symmetric


class TestTimer:
    def test_accumulates(self):
        t = Timer()
        with t:
            time.sleep(0.01)
        first = t.elapsed
        with t:
            time.sleep(0.01)
        assert t.elapsed > first

    def test_reset(self):
        t = Timer()
        with t:
            pass
        t.reset()
        assert t.elapsed == 0.0

    def test_initial_zero(self):
        assert Timer().elapsed == 0.0


class TestCheckIndexArray:
    def test_valid(self):
        a = check_index_array(np.array([0, 1, 2]), 3)
        assert a.tolist() == [0, 1, 2]

    def test_out_of_range(self):
        with pytest.raises(ValueError, match="outside"):
            check_index_array(np.array([0, 3]), 3)

    def test_negative(self):
        with pytest.raises(ValueError, match="outside"):
            check_index_array(np.array([-1]), 3)

    def test_non_integer(self):
        with pytest.raises(ValueError, match="integer"):
            check_index_array(np.array([0.5]), 3)

    def test_wrong_ndim(self):
        with pytest.raises(ValueError, match="1-D"):
            check_index_array(np.zeros((2, 2), dtype=int), 4)

    def test_empty_ok(self):
        assert check_index_array(np.array([], dtype=int), 0).size == 0


class TestCheckPermutation:
    def test_valid(self):
        check_permutation(np.array([2, 0, 1]), 3)

    def test_wrong_length(self):
        with pytest.raises(ValueError, match="length"):
            check_permutation(np.array([0, 1]), 3)

    def test_duplicate(self):
        with pytest.raises(ValueError, match="bijection"):
            check_permutation(np.array([0, 0, 2]), 3)


class TestCheckSquareCsr:
    def test_coerces(self):
        a = check_square_csr(sp.eye(3).tocoo())
        assert sp.issparse(a) and a.format == "csr"

    def test_rejects_rectangular(self):
        with pytest.raises(ValueError, match="square"):
            check_square_csr(sp.random(3, 4, density=0.5))


class TestCheckSymmetric:
    def test_symmetric_passes(self):
        a = sp.eye(4).tocsr()
        check_symmetric(a)

    def test_asymmetric_raises(self):
        a = sp.csr_matrix(np.array([[1.0, 2.0], [0.0, 1.0]]))
        with pytest.raises(ValueError, match="not symmetric"):
            check_symmetric(a)
