import time

import numpy as np
import pytest
import scipy.sparse as sp

from repro.utils import (
    Timer,
    check_contact_groups,
    check_finite_coords,
    check_index_array,
    check_permutation,
    check_square_csr,
    check_symmetric,
)


class TestTimer:
    def test_accumulates(self):
        t = Timer()
        with t:
            time.sleep(0.01)
        first = t.elapsed
        with t:
            time.sleep(0.01)
        assert t.elapsed > first

    def test_reset(self):
        t = Timer()
        with t:
            pass
        t.reset()
        assert t.elapsed == 0.0

    def test_initial_zero(self):
        assert Timer().elapsed == 0.0

    def test_nested_entry_raises(self):
        # regression: a nested `with t:` used to silently overwrite the
        # start stamp, losing the outer interval
        t = Timer()
        with pytest.raises(RuntimeError, match="already running"):
            with t:
                with t:
                    pass

    def test_outer_interval_survives_nested_attempt(self):
        t = Timer()
        try:
            with t:
                time.sleep(0.01)
                with t:
                    pass
        except RuntimeError:
            pass
        assert t.elapsed >= 0.01
        # and the timer is usable again afterwards
        with t:
            pass


class TestCheckIndexArray:
    def test_valid(self):
        a = check_index_array(np.array([0, 1, 2]), 3)
        assert a.tolist() == [0, 1, 2]

    def test_out_of_range(self):
        with pytest.raises(ValueError, match="outside"):
            check_index_array(np.array([0, 3]), 3)

    def test_negative(self):
        with pytest.raises(ValueError, match="outside"):
            check_index_array(np.array([-1]), 3)

    def test_non_integer(self):
        with pytest.raises(ValueError, match="integer"):
            check_index_array(np.array([0.5]), 3)

    def test_wrong_ndim(self):
        with pytest.raises(ValueError, match="1-D"):
            check_index_array(np.zeros((2, 2), dtype=int), 4)

    def test_empty_ok(self):
        assert check_index_array(np.array([], dtype=int), 0).size == 0


class TestCheckPermutation:
    def test_valid(self):
        check_permutation(np.array([2, 0, 1]), 3)

    def test_wrong_length(self):
        with pytest.raises(ValueError, match="length"):
            check_permutation(np.array([0, 1]), 3)

    def test_duplicate(self):
        with pytest.raises(ValueError, match="bijection"):
            check_permutation(np.array([0, 0, 2]), 3)


class TestCheckSquareCsr:
    def test_coerces(self):
        a = check_square_csr(sp.eye(3).tocoo())
        assert sp.issparse(a) and a.format == "csr"

    def test_rejects_rectangular(self):
        with pytest.raises(ValueError, match="square"):
            check_square_csr(sp.random(3, 4, density=0.5))


class TestCheckSymmetric:
    def test_symmetric_passes(self):
        a = sp.eye(4).tocsr()
        check_symmetric(a)

    def test_asymmetric_raises(self):
        a = sp.csr_matrix(np.array([[1.0, 2.0], [0.0, 1.0]]))
        with pytest.raises(ValueError, match="not symmetric"):
            check_symmetric(a)


class TestCheckFiniteCoords:
    def test_clean_coords_pass_through(self):
        coords = np.zeros((5, 3))
        out = check_finite_coords(coords)
        assert out.dtype == np.float64

    def test_nan_coordinate_named(self):
        coords = np.zeros((5, 3))
        coords[3, 1] = np.nan
        with pytest.raises(ValueError, match="node 3"):
            check_finite_coords(coords)

    def test_inf_coordinate_rejected(self):
        coords = np.zeros((4, 3))
        coords[0, 2] = np.inf
        with pytest.raises(ValueError, match="non-finite"):
            check_finite_coords(coords)

    def test_assembly_rejects_poisoned_mesh(self):
        """The check fires before assembly, not hundreds of CG iterations
        later as a NAN_DETECTED breakdown."""
        from repro.fem.assembly import assemble_stiffness
        from repro.fem.generators import box_mesh

        mesh = box_mesh(2, 2, 2)
        mesh.coords[5, 0] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            assemble_stiffness(mesh)


class TestCheckContactGroups:
    def test_valid_groups_coerced_to_int64(self):
        out = check_contact_groups([np.array([0, 1]), [2, 3]], 4)
        assert all(g.dtype == np.int64 for g in out)

    def test_duplicate_within_group_rejected(self):
        with pytest.raises(ValueError, match="more than once"):
            check_contact_groups([np.array([0, 1, 1])], 4)

    def test_overlapping_groups_rejected(self):
        with pytest.raises(ValueError, match="overlap"):
            check_contact_groups([np.array([0, 1]), np.array([1, 2])], 4)

    def test_singleton_group_rejected(self):
        with pytest.raises(ValueError, match="fewer than 2"):
            check_contact_groups([np.array([0])], 4)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            check_contact_groups([np.array([0, 9])], 4)
