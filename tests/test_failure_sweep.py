"""Tier-1 smoke of the checkpointed fault-tolerance sweep.

The full matrix (failure leg x preconditioner x seed x slot) runs as a CI
script; here the ``--quick`` configuration must report 100% recovery to
the fault-free answer — the contract the checkpoint/recovery layer is
tested against.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "scripts"))

import failure_sweep  # noqa: E402


def test_quick_sweep_full_recovery():
    summary = failure_sweep.run_sweep(quick=True)
    # 3 preconds x 1 seed x 1 slot + 3 x 1 x 2 kinds + 3 x 1 kill cycle
    assert summary["n_runs"] == 12
    assert summary["recovery_rate"] == 1.0
    assert summary["max_rel_err"] <= failure_sweep.REL_TOL
    legs = {r["leg"] for r in summary["runs"]}
    assert legs == {"rank_kill", "rollback", "process_kill"}
    # process restarts must be bit-for-bit, not merely within tolerance
    assert all(
        r["bit_exact"] for r in summary["runs"] if r["leg"] == "process_kill"
    )


def test_cli_entry_quick():
    assert failure_sweep.main(["--quick"]) == 0
