"""The shared experiment workloads themselves."""

import numpy as np
import pytest

from repro.experiments.workloads import (
    block_problem,
    dof_summary,
    homogeneous_box_problem,
    swjapan_problem,
    table2_block_mesh,
)


class TestWorkloads:
    def test_block_scales_monotonically(self):
        small = table2_block_mesh(0.5)
        big = table2_block_mesh(1.0)
        assert big.n_nodes > small.n_nodes

    def test_block_problem_spd_ready(self):
        prob = block_problem(0.4, penalty=1e4)
        assert prob.ndof == 3 * prob.mesh.n_nodes
        assert prob.a.shape == (prob.ndof, prob.ndof)
        assert len(prob.groups) > 0

    def test_swjapan_problem_builds(self):
        prob = swjapan_problem(0.4, penalty=1e4)
        assert prob.ndof > 0
        assert len(prob.groups) > 0
        # body-force load: nonzero RHS everywhere inside
        assert np.linalg.norm(prob.b) > 0

    def test_homogeneous_box_has_no_groups(self):
        prob = homogeneous_box_problem(4)
        assert prob.groups == []

    def test_minimum_scale_clamped(self):
        mesh = table2_block_mesh(0.01)
        assert mesh.n_nodes > 0

    def test_dof_summary_mentions_counts(self):
        prob = block_problem(0.4, penalty=1e2)
        s = dof_summary(prob)
        assert str(prob.ndof) in s and "contact groups" in s

    @pytest.mark.parametrize("scale", [0.4, 0.8])
    def test_problems_solvable_at_any_scale(self, scale):
        from repro.precond import sb_bic0
        from repro.solvers.cg import cg_solve

        prob = block_problem(scale, penalty=1e6)
        res = cg_solve(prob.a, prob.b, sb_bic0(prob.a, prob.groups), max_iter=20000)
        assert res.converged
