import numpy as np
import pytest

from repro.fem.assembly import assemble_stiffness
from repro.fem.bc import all_dofs, apply_dirichlet, component_dofs, surface_load
from repro.fem.generators import simple_block_model
from repro.fem.nonlinear import solve_nonlinear_contact
from repro.precond import bic


@pytest.fixture(scope="module")
def alm_system():
    mesh = simple_block_model(2, 2, 2, 2, 2)
    k = assemble_stiffness(mesh)
    f = surface_load(mesh, mesh.node_sets["zmax"], np.array([0.0, 0.0, -1.0]))
    fixed = np.unique(
        np.concatenate(
            [
                all_dofs(mesh.node_sets["zmin"]),
                component_dofs(mesh.node_sets["xmin"], 0),
                component_dofs(mesh.node_sets["ymin"], 1),
            ]
        )
    )
    a_free, b = apply_dirichlet(k.to_csr(), f, fixed)
    return mesh, a_free, b


class TestALM:
    def test_converges_and_satisfies_constraints(self, alm_system):
        mesh, a_free, b = alm_system
        res = solve_nonlinear_contact(
            a_free, b, mesh.contact_groups, mesh.n_nodes,
            penalty=1e4, precond_factory=lambda a: bic(a, fill_level=0),
        )
        assert res.converged
        assert res.constraint_norm <= 1e-8
        # coincident nodes end with (essentially) equal displacements
        u = res.u.reshape(-1, 3)
        for g in mesh.contact_groups:
            assert np.allclose(u[g], u[g[0]], atol=1e-6)

    def test_larger_penalty_fewer_cycles(self, alm_system):
        mesh, a_free, b = alm_system
        cycles = []
        for lam in (1e2, 1e6):
            res = solve_nonlinear_contact(
                a_free, b, mesh.contact_groups, mesh.n_nodes,
                penalty=lam, precond_factory=lambda a: bic(a, fill_level=0),
                constraint_tol=1e-6,
            )
            cycles.append(res.cycles)
        assert cycles[1] <= cycles[0]

    def test_total_cg_iterations_recorded(self, alm_system):
        mesh, a_free, b = alm_system
        res = solve_nonlinear_contact(
            a_free, b, mesh.contact_groups, mesh.n_nodes,
            penalty=1e3, precond_factory=lambda a: bic(a, fill_level=0),
        )
        assert len(res.cg_iterations) == res.cycles
        assert res.total_cg_iterations == sum(res.cg_iterations)

    def test_max_cycles_flags_nonconvergence(self, alm_system):
        mesh, a_free, b = alm_system
        res = solve_nonlinear_contact(
            a_free, b, mesh.contact_groups, mesh.n_nodes,
            penalty=1e1, precond_factory=lambda a: bic(a, fill_level=0),
            constraint_tol=1e-14, max_cycles=1,
        )
        assert not res.converged
        assert res.cycles == 1

    def test_solution_matches_exact_tied_reference(self, alm_system):
        """ALM's converged solution equals the exact master-slave
        elimination of the tied constraints (no penalty involved)."""
        import scipy.sparse as sp
        import scipy.sparse.linalg as spla

        mesh, a_free, b = alm_system
        res = solve_nonlinear_contact(
            a_free, b, mesh.contact_groups, mesh.n_nodes,
            penalty=1e5, precond_factory=lambda a: bic(a, fill_level=0),
            constraint_tol=1e-10,
        )
        # reduction T: every group member's DOFs map to the master's
        ndof = a_free.shape[0]
        master_of = np.arange(mesh.n_nodes)
        for g in mesh.contact_groups:
            master_of[g] = g[0]
        masters = np.unique(master_of)
        col_of = {int(n): i for i, n in enumerate(masters)}
        rows, cols = [], []
        for node in range(mesh.n_nodes):
            for comp in range(3):
                rows.append(3 * node + comp)
                cols.append(3 * col_of[int(master_of[node])] + comp)
        t = sp.csr_matrix((np.ones(ndof), (rows, cols)), shape=(ndof, 3 * masters.size))
        a_red = (t.T @ a_free @ t).tocsc()
        u_red = spla.spsolve(a_red, t.T @ b)
        ref = t @ u_red
        assert np.allclose(res.u, ref, atol=1e-6 * max(np.abs(ref).max(), 1.0))
