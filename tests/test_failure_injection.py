"""Failure injection: degenerate inputs and breakdown paths."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.fem.generators import box_mesh
from repro.fem.model import build_contact_problem
from repro.parallel import partition_nodes_rcb
from repro.precond import DiagonalScaling, LocalizedPreconditioner, bic
from repro.precond.icfact import BlockICFactorization
from repro.reorder import adjacency_from_pattern, multicolor
from repro.solvers.cg import cg_solve
from repro.sparse.djds import build_djds
from repro.sparse.vbr import VBRMatrix


class TestSolverBreakdowns:
    def test_cg_on_indefinite_matrix_stops_cleanly(self):
        from repro.resilience import FailureReason

        a = sp.diags([1.0, -1.0, 2.0]).tocsr()
        res = cg_solve(a, np.ones(3), max_iter=50)
        assert not res.converged
        assert res.reason is FailureReason.BREAKDOWN_INDEFINITE
        assert np.isfinite(res.relative_residual) or res.iterations <= 50

    def test_cg_with_nan_rhs_fails_fast(self):
        """Poisoned input is rejected at entry, not iterated on."""
        a = sp.eye(3).tocsr()
        with pytest.raises(ValueError, match="non-finite"):
            cg_solve(a, np.array([np.nan, 1.0, 1.0]), max_iter=10)

    def test_singular_pivot_is_nudged_not_crashed(self):
        """A structurally singular (isolated, zero-diagonal) block must
        not raise; the engine records the breakdown, warns, and
        regularizes."""
        from repro.resilience import PivotNudgeWarning

        a = sp.csr_matrix(
            np.array(
                [
                    [0.0, 0.0, 0.0],
                    [0.0, 4.0, 1.0],
                    [0.0, 1.0, 4.0],
                ]
            )
        )
        with pytest.warns(PivotNudgeWarning):
            m = BlockICFactorization(a, [np.array([0]), np.array([1, 2])], fill_level=0)
        assert m.breakdown_count >= 1
        assert m.factorization_stats()["pivot_nudges"] >= 1
        z = m.apply(np.ones(3))
        assert np.isfinite(z).all()


class TestDegenerateStructures:
    def test_vbr_empty_matrix(self):
        v = VBRMatrix.from_pattern(np.array([1, 1]), np.array([0, 0, 0]), np.array([], dtype=int))
        assert v.nnzb == 0
        assert np.allclose(v.matvec(np.zeros(2)), 0.0)
        assert v.find_blocks(np.array([0]), np.array([1]))[0] == -1

    def test_djds_diagonal_only_matrix(self):
        a = sp.eye(5).tocsr()
        col = multicolor(adjacency_from_pattern(a))
        d = build_djds(a, col)
        assert len(d.loops) == 0
        x = np.arange(5.0)
        assert np.allclose(d.matvec(x), x)

    def test_multicolor_edgeless_graph(self):
        adj = adjacency_from_pattern(sp.csr_matrix((4, 4)))
        col = multicolor(adj)
        assert col.ncolors == 1

    def test_partition_coincident_points(self):
        coords = np.zeros((8, 3))
        part = partition_nodes_rcb(coords, 2)
        counts = np.bincount(part)
        assert counts.tolist() == [4, 4]

    def test_single_node_domain(self):
        mesh = box_mesh(2, 2, 2)
        prob = build_contact_problem(mesh, penalty=0.0)
        # one domain per node: localized IC == diagonal-block scaling
        part = np.arange(mesh.n_nodes)
        lp = LocalizedPreconditioner(prob.a, part, lambda s, n: bic(s, fill_level=0))
        res = cg_solve(prob.a, prob.b, lp, max_iter=20000)
        assert res.converged

    def test_localized_one_domain_equals_global(self):
        mesh = box_mesh(2, 2, 2)
        prob = build_contact_problem(mesh, penalty=0.0)
        part = np.zeros(mesh.n_nodes, dtype=int)
        lp = LocalizedPreconditioner(prob.a, part, lambda s, n: bic(s, fill_level=0))
        m = bic(prob.a, fill_level=0)
        i1 = cg_solve(prob.a, prob.b, lp).iterations
        i2 = cg_solve(prob.a, prob.b, m).iterations
        assert abs(i1 - i2) <= 1

    def test_diag_scaling_paper_limit(self):
        """Localized preconditioning with one domain per DOF *is* diagonal
        scaling (paper section 2.2's limiting statement)."""
        mesh = box_mesh(2, 2, 2)
        prob = build_contact_problem(mesh, penalty=0.0)
        from repro.precond import scalar_ic0

        part_dofs = np.arange(mesh.n_nodes)  # per-node (3-DOF blocks)
        i_diag = cg_solve(prob.a, prob.b, DiagonalScaling(prob.a), max_iter=20000).iterations
        # per-DOF localization on the scalar level:
        lp = LocalizedPreconditioner(
            prob.a,
            part_dofs,
            lambda s, n: scalar_ic0(s),
            b=3,
        )
        # per-node localization is nearly (not exactly) diagonal scaling;
        # both must land in the same small band:
        i_loc = cg_solve(prob.a, prob.b, lp, max_iter=20000).iterations
        assert abs(i_loc - i_diag) <= max(5, 0.4 * i_diag)


class TestValidationErrors:
    def test_vbr_from_csr_needs_partition(self):
        a = sp.eye(4).tocsr()
        with pytest.raises(ValueError, match="cover"):
            VBRMatrix.from_csr(a, [np.array([0, 1])])

    def test_localized_rejects_bad_domain_count(self):
        mesh = box_mesh(2, 2, 2)
        prob = build_contact_problem(mesh, penalty=0.0)
        bad = np.zeros(mesh.n_nodes - 1, dtype=int)
        with pytest.raises(ValueError):
            LocalizedPreconditioner(prob.a, bad, lambda s, n: bic(s, fill_level=0))
