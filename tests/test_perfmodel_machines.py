"""Machine-model constants and invariants (calibration regression tests)."""

import numpy as np
import pytest

from repro.perfmodel import EARTH_SIMULATOR, SR2201
from repro.perfmodel.machines import Interconnect, MachineModel, VectorPipeline


class TestEarthSimulatorConstants:
    def test_advertised_peak(self):
        """8 GFLOPS per PE, 8 PEs per node, 64 GFLOPS per node (section 1.2)."""
        assert EARTH_SIMULATOR.pe.peak_flops == 8.0e9
        assert EARTH_SIMULATOR.pe_per_node == 8
        assert EARTH_SIMULATOR.node_peak_flops == 64.0e9

    def test_sustained_below_peak(self):
        assert EARTH_SIMULATOR.pe.r_inf < EARTH_SIMULATOR.pe.peak_flops

    def test_scalar_anchor(self):
        """CRS-without-reordering anchor: 8 scalar PEs ~ 0.30 GFLOPS/node."""
        node_scalar = 8 * EARTH_SIMULATOR.pe.scalar_flops
        assert 0.25e9 < node_scalar < 0.35e9

    def test_long_loop_anchor(self):
        """Fig. 15 anchor: vector length ~2,650 sustains ~2.84 GF/PE."""
        r = EARTH_SIMULATOR.pe.rate(2650.0)
        assert 2.5e9 < r < 3.1e9

    def test_half_length_semantics(self):
        pe = EARTH_SIMULATOR.pe
        assert np.isclose(pe.rate(pe.n_half), pe.r_inf / 2.0)


class TestSR2201Constants:
    def test_peak(self):
        """300 MFLOPS per PE (section 2.2: 1024 PEs = 300 GFLOPS peak)."""
        assert SR2201.pe.peak_flops == 0.3e9
        assert SR2201.pe_per_node == 1

    def test_sustained_fraction_matches_paper(self):
        """Paper: 68.7 GFLOPS on 1024 PEs = ~23% of peak; the model's
        long-loop sustained rate must sit in that neighbourhood."""
        frac = SR2201.pe.rate(10000.0) / SR2201.pe.peak_flops
        assert 0.15 < frac < 0.35


class TestModelInvariants:
    @pytest.mark.parametrize("machine", [EARTH_SIMULATOR, SR2201], ids=["ES", "SR2201"])
    def test_rate_monotone(self, machine):
        lens = np.array([1.0, 10.0, 100.0, 1000.0, 100000.0])
        rates = [machine.pe.rate(l) for l in lens]
        assert all(a <= b for a, b in zip(rates, rates[1:]))

    @pytest.mark.parametrize("machine", [EARTH_SIMULATOR, SR2201], ids=["ES", "SR2201"])
    def test_interconnect_positive(self, machine):
        for ic in (machine.inter_node, machine.intra_node):
            assert ic.latency_seconds > 0
            assert ic.bandwidth_bytes > 0

    def test_intra_node_faster_than_inter_node(self):
        assert (
            EARTH_SIMULATOR.intra_node.latency_seconds
            < EARTH_SIMULATOR.inter_node.latency_seconds
        )

    def test_custom_machine_composes(self):
        m = MachineModel(
            name="toy",
            pe=VectorPipeline(1e9, 0.5e9, 50.0, 0.01e9, 1e-6),
            pe_per_node=4,
            inter_node=Interconnect(1e-5, 1e9, 1e-5),
            intra_node=Interconnect(1e-6, 1e10, 1e-6),
            openmp_sync_seconds=1e-6,
        )
        assert m.node_peak_flops == 4e9
        assert m.pe.rate(50.0) == 0.25e9
