import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.precond import DiagonalScaling
from repro.solvers.cg import cg_solve
from repro.sparse.bcsr import BCSRMatrix


def spd(n, seed, density=0.3):
    m = sp.random(n, n, density=density, random_state=np.random.RandomState(seed))
    a = (m + m.T).tocsr()
    a.setdiag(np.asarray(abs(a).sum(axis=1)).reshape(-1) + 1.0)
    return sp.csr_matrix(a)


class TestBasics:
    def test_identity_converges_immediately(self):
        a = sp.eye(5).tocsr()
        b = np.arange(1.0, 6.0)
        res = cg_solve(a, b)
        assert res.converged and res.iterations <= 1
        assert np.allclose(res.x, b)

    def test_zero_rhs(self):
        a = spd(6, 0)
        res = cg_solve(a, np.zeros(6))
        assert res.converged and res.iterations == 0
        assert np.allclose(res.x, 0)

    def test_solves_random_spd(self):
        a = spd(30, 1)
        x = np.random.default_rng(2).normal(size=30)
        res = cg_solve(a, a @ x, eps=1e-12)
        assert res.converged
        assert np.allclose(res.x, x, atol=1e-6)

    def test_x0_warm_start(self):
        a = spd(20, 3)
        x = np.random.default_rng(4).normal(size=20)
        b = a @ x
        cold = cg_solve(a, b)
        warm = cg_solve(a, b, x0=x + 1e-10)
        assert warm.iterations <= cold.iterations

    def test_max_iter_flags_nonconvergence(self):
        a = spd(50, 5, density=0.2)
        res = cg_solve(a, np.ones(50), max_iter=1, eps=1e-16)
        assert not res.converged
        assert res.iterations == 1

    def test_history_recorded_and_final_below_eps(self):
        a = spd(25, 6)
        res = cg_solve(a, np.ones(25), eps=1e-8)
        assert res.history.size == res.iterations + 1
        assert res.history[-1] <= 1e-8

    def test_history_disabled(self):
        a = spd(10, 7)
        res = cg_solve(a, np.ones(10), record_history=False)
        assert res.history.size == 0

    def test_repr_mentions_status(self):
        a = spd(8, 8)
        res = cg_solve(a, np.ones(8))
        assert "converged" in repr(res)

    def test_total_seconds(self):
        a = spd(8, 9)
        res = cg_solve(a, np.ones(8))
        assert res.total_seconds >= res.solve_seconds


class TestOperatorAdapters:
    def test_bcsr_matrix_accepted(self):
        rng = np.random.default_rng(10)
        dense = rng.normal(size=(9, 9))
        spd_dense = dense @ dense.T + 9 * np.eye(9)
        m = BCSRMatrix.from_scipy(sp.csr_matrix(spd_dense))
        x = rng.normal(size=9)
        res = cg_solve(m, spd_dense @ x, eps=1e-12)
        assert res.converged and np.allclose(res.x, x, atol=1e-6)

    def test_dense_array_accepted(self):
        rng = np.random.default_rng(11)
        dense = rng.normal(size=(6, 6))
        a = dense @ dense.T + 6 * np.eye(6)
        res = cg_solve(a, np.ones(6), eps=1e-12)
        assert res.converged

    def test_rejects_unknown_type(self):
        with pytest.raises(TypeError):
            cg_solve("not a matrix", np.ones(3))

    def test_preconditioner_accelerates_illconditioned(self):
        d = np.logspace(0, 6, 40)
        a = sp.diags(d).tocsr()
        b = np.ones(40)
        plain = cg_solve(a, b, eps=1e-10, max_iter=2000)
        pre = cg_solve(a, b, DiagonalScaling(a), eps=1e-10)
        assert pre.iterations < plain.iterations


@settings(max_examples=20, deadline=None)
@given(n=st.integers(2, 40), seed=st.integers(0, 10_000))
def test_property_cg_solves_spd(n, seed):
    a = spd(n, seed)
    rng = np.random.default_rng(seed)
    x = rng.normal(size=n)
    res = cg_solve(a, a @ x, eps=1e-11)
    assert res.converged
    assert np.linalg.norm(res.x - x) <= 1e-5 * max(np.linalg.norm(x), 1.0)


@settings(max_examples=20, deadline=None)
@given(n=st.integers(2, 30), seed=st.integers(0, 10_000))
def test_property_residual_matches_reported(n, seed):
    a = spd(n, seed)
    b = np.random.default_rng(seed).normal(size=n)
    res = cg_solve(a, b, eps=1e-9)
    true_rel = np.linalg.norm(b - a @ res.x) / np.linalg.norm(b)
    assert np.isclose(true_rel, res.relative_residual, rtol=1e-6, atol=1e-12)
