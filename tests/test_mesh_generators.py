import numpy as np
import pytest

from repro.fem.generators import box_mesh, simple_block_model, southwest_japan_model
from repro.fem.mesh import Mesh


class TestMesh:
    def test_counts(self, box3):
        assert box3.n_nodes == 4**3
        assert box3.n_elem == 27
        assert box3.ndof == 3 * 64

    def test_bad_coords_shape(self):
        with pytest.raises(ValueError, match="coords"):
            Mesh(coords=np.zeros((3, 2)), hexes=np.zeros((1, 8), dtype=int))

    def test_bad_hex_index(self):
        with pytest.raises(ValueError):
            Mesh(coords=np.zeros((4, 3)), hexes=np.full((1, 8), 9))

    def test_material_ids_default_zero(self, box3):
        assert np.all(box3.material_ids == 0)

    def test_nodes_where(self, box3):
        bottom = box3.nodes_where(lambda c: c[:, 2] == 0.0)
        assert bottom.size == 16


class TestBoxMesh:
    def test_node_sets_cover_surfaces(self):
        m = box_mesh(2, 3, 4)
        assert m.node_sets["xmin"].size == 4 * 5
        assert m.node_sets["zmax"].size == 3 * 4
        for name in ("xmin", "xmax", "ymin", "ymax", "zmin", "zmax"):
            assert m.node_sets[name].size > 0

    def test_no_contact_groups(self):
        assert box_mesh(2, 2, 2).contact_groups == []

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            box_mesh(0, 2, 2)

    def test_spacing(self):
        m = box_mesh(2, 2, 2, spacing=0.5)
        assert np.isclose(m.coords[:, 0].max(), 1.0)

    def test_positive_jacobians(self):
        from repro.fem.assembly import element_volumes

        m = box_mesh(3, 2, 4)
        assert np.allclose(element_volumes(m), 1.0)


class TestSimpleBlockModel:
    def test_paper_node_formula(self):
        """Node count must follow the paper's geometry exactly: the
        Table 2 configuration (20,20,15,20,20) gives 27,888 nodes."""
        nx1 = nx2 = 3
        ny, nz1, nz2 = 2, 3, 3
        m = simple_block_model(nx1, nx2, ny, nz1, nz2)
        expected = (
            (nx1 + nx2 + 1) * (ny + 1) * (nz1 + 1)
            + (nx1 + 1) * (ny + 1) * (nz2 + 1)
            + (nx2 + 1) * (ny + 1) * (nz2 + 1)
        )
        assert m.n_nodes == expected

    def test_paper_element_count(self):
        m = simple_block_model(3, 3, 2, 3, 3)
        assert m.n_elem == (6 * 2 * 3) + 2 * (3 * 2 * 3)

    def test_group_sizes_are_2_and_3(self, block_mesh_small):
        sizes = {len(g) for g in block_mesh_small.contact_groups}
        assert sizes == {2, 3}

    def test_triple_groups_on_junction_line(self, block_mesh_small):
        """Groups of 3 sit exactly on the T-junction line x=nx1, z=nz1."""
        for g in block_mesh_small.contact_groups:
            if len(g) == 3:
                c = block_mesh_small.coords[g[0]]
                assert np.isclose(c[0], 3.0) and np.isclose(c[2], 3.0)

    def test_groups_coincident(self, block_mesh_small):
        for g in block_mesh_small.contact_groups:
            assert np.allclose(
                block_mesh_small.coords[g], block_mesh_small.coords[g[0]], atol=1e-12
            )

    def test_three_materials(self, block_mesh_small):
        assert set(np.unique(block_mesh_small.material_ids)) == {0, 1, 2}

    def test_positive_jacobians(self, block_mesh_small):
        from repro.fem.assembly import element_volumes

        assert np.all(element_volumes(block_mesh_small) > 0)

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            simple_block_model(0, 1, 1, 1, 1)


class TestSouthwestJapanModel:
    def test_groups_exist_with_mixed_sizes(self, swj_mesh_small):
        sizes = {len(g) for g in swj_mesh_small.contact_groups}
        assert 2 in sizes and 3 in sizes

    def test_groups_remain_coincident_after_warp(self, swj_mesh_small):
        for g in swj_mesh_small.contact_groups:
            assert np.allclose(
                swj_mesh_small.coords[g], swj_mesh_small.coords[g[0]], atol=1e-9
            )

    def test_two_plus_materials(self, swj_mesh_small):
        assert set(np.unique(swj_mesh_small.material_ids)) == {0, 1, 2}

    def test_positive_jacobians(self, swj_mesh_small):
        from repro.fem.assembly import element_volumes

        assert np.all(element_volumes(swj_mesh_small) > 0)

    def test_elements_are_distorted(self, swj_mesh_small):
        """Some elements must be genuinely non-cubic (the model's point)."""
        from repro.fem.assembly import element_volumes

        vols = element_volumes(swj_mesh_small)
        assert vols.std() / vols.mean() > 0.02

    def test_deterministic(self):
        a = southwest_japan_model(5, 4, 2, 2, seed=7)
        b = southwest_japan_model(5, 4, 2, 2, seed=7)
        assert np.allclose(a.coords, b.coords)

    def test_distortion_bound_validated(self):
        with pytest.raises(ValueError, match="distortion"):
            southwest_japan_model(4, 3, 2, 2, distortion=0.5)
