import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse.vbr import (
    VBRMatrix,
    permutation_from_supernodes,
    shape_buckets,
    supernode_maps,
)


def random_partition(ndof, rng, max_size=4):
    """Random ordered partition of 0..ndof-1 into super-nodes."""
    perm = rng.permutation(ndof)
    out = []
    i = 0
    while i < ndof:
        s = int(rng.integers(1, max_size + 1))
        out.append(np.sort(perm[i : i + s]))
        i += s
    return out


def random_csr(ndof, rng, density=0.3):
    m = sp.random(ndof, ndof, density=density, random_state=np.random.RandomState(int(rng.integers(2**31))))
    a = (m + m.T).tocsr()
    a.setdiag(np.arange(1, ndof + 1, dtype=float))
    a.sum_duplicates()
    a.sort_indices()
    return a


class TestSupernodeMaps:
    def test_valid(self):
        sn, loc = supernode_maps([np.array([0, 2]), np.array([1])], 3)
        assert sn.tolist() == [0, 1, 0]
        assert loc.tolist() == [0, 0, 1]

    def test_overlap_rejected(self):
        with pytest.raises(ValueError, match="overlap"):
            supernode_maps([np.array([0, 1]), np.array([1, 2])], 3)

    def test_gap_rejected(self):
        with pytest.raises(ValueError, match="cover"):
            supernode_maps([np.array([0])], 2)

    def test_permutation(self):
        perm = permutation_from_supernodes([np.array([2, 0]), np.array([1])])
        assert perm.tolist() == [2, 0, 1]


class TestShapeBuckets:
    def test_groups_by_shape(self):
        sr = np.array([1, 2, 1, 2])
        sc = np.array([1, 1, 1, 1])
        buckets = list(shape_buckets(sr, sc, np.arange(4)))
        shapes = {(a, b): pos.tolist() for a, b, pos in buckets}
        assert shapes[(1, 1)] == [0, 2]
        assert shapes[(2, 1)] == [1, 3]

    def test_empty(self):
        assert list(shape_buckets(np.array([1]), np.array([1]), np.array([], dtype=int))) == []


class TestVBRRoundtrip:
    def test_to_csr_matches_permuted_input(self):
        rng = np.random.default_rng(0)
        a = random_csr(12, rng)
        parts = random_partition(12, rng)
        v = VBRMatrix.from_csr(a, parts)
        perm = permutation_from_supernodes(parts)
        ref = a[perm][:, perm].toarray()
        got = v.to_csr().toarray()
        # VBR stores dense blocks: the pattern may include explicit zeros
        assert np.allclose(got, ref)

    def test_matvec_matches(self):
        rng = np.random.default_rng(1)
        a = random_csr(15, rng)
        parts = random_partition(15, rng)
        v = VBRMatrix.from_csr(a, parts)
        perm = permutation_from_supernodes(parts)
        x = rng.normal(size=15)
        assert np.allclose(v.matvec(x[perm]), (a @ x)[perm])

    def test_lower_only_keeps_lower_blocks(self):
        rng = np.random.default_rng(2)
        a = random_csr(9, rng)
        parts = [np.array([i]) for i in range(9)]
        v = VBRMatrix.from_csr(a, parts, lower_only=True)
        assert (v.indices <= v.block_rows()).all()
        ref = np.tril(a.toarray())
        assert np.allclose(v.to_csr().toarray(), ref)

    def test_matvec_shape_check(self):
        rng = np.random.default_rng(3)
        a = random_csr(6, rng)
        v = VBRMatrix.from_csr(a, [np.arange(6)])
        with pytest.raises(ValueError, match="shape"):
            v.matvec(np.zeros(5))


class TestBlockAccess:
    def test_find_blocks(self):
        rng = np.random.default_rng(4)
        a = random_csr(8, rng)
        parts = random_partition(8, rng, max_size=3)
        v = VBRMatrix.from_csr(a, parts)
        rows = v.block_rows()
        pos = v.find_blocks(rows, v.indices)
        assert np.array_equal(pos, np.arange(v.nnzb))

    def test_find_absent_returns_minus_one(self):
        a = sp.eye(4).tocsr()
        v = VBRMatrix.from_csr(a, [np.array([i]) for i in range(4)])
        pos = v.find_blocks(np.array([0]), np.array([3]))
        assert pos[0] == -1

    def test_gather_scatter_roundtrip(self):
        rng = np.random.default_rng(5)
        a = random_csr(10, rng)
        parts = [np.arange(0, 5), np.arange(5, 10)]
        v = VBRMatrix.from_csr(a, parts)
        before = v.gather(np.array([0]), 5, 5)
        v.scatter_add(np.array([0]), 5, 5, np.ones((1, 5, 5)))
        after = v.gather(np.array([0]), 5, 5)
        assert np.allclose(after - before, 1.0)

    def test_block_view(self):
        a = sp.csr_matrix(np.arange(16, dtype=float).reshape(4, 4))
        v = VBRMatrix.from_csr(a, [np.array([0, 1]), np.array([2, 3])])
        blk = v.block(0)
        assert blk.shape == (2, 2)
        assert np.allclose(blk, [[0, 1], [4, 5]])

    def test_scatter_csr_outside_pattern_raises(self):
        a = sp.eye(4).tocsr()
        v = VBRMatrix.from_csr(a, [np.array([i]) for i in range(4)])
        bad = sp.csr_matrix(np.array(
            [[0.0, 1.0, 0, 0], [0, 0, 0, 0], [0, 0, 0, 0], [0, 0, 0, 0]]
        ))
        sn, loc = supernode_maps([np.array([i]) for i in range(4)], 4)
        with pytest.raises(ValueError, match="outside"):
            v.scatter_csr(bad, sn, loc)


@settings(max_examples=20, deadline=None)
@given(ndof=st.integers(4, 16), seed=st.integers(0, 10_000))
def test_property_vbr_csr_roundtrip(ndof, seed):
    rng = np.random.default_rng(seed)
    a = random_csr(ndof, rng, density=0.4)
    parts = random_partition(ndof, rng)
    v = VBRMatrix.from_csr(a, parts)
    perm = permutation_from_supernodes(parts)
    assert np.allclose(v.to_csr().toarray(), a[perm][:, perm].toarray())


@settings(max_examples=20, deadline=None)
@given(ndof=st.integers(4, 16), seed=st.integers(0, 10_000))
def test_property_memory_counts_data(ndof, seed):
    rng = np.random.default_rng(seed)
    a = random_csr(ndof, rng, density=0.4)
    parts = random_partition(ndof, rng)
    v = VBRMatrix.from_csr(a, parts)
    assert v.memory_bytes() >= v.data.nbytes
