"""Checkpointed fault tolerance: journal container, CG rollback, rank
recovery (LFLR), and durable ALM restart."""

import numpy as np
import pytest

from repro.fem.assembly import assemble_stiffness
from repro.fem.bc import all_dofs, apply_dirichlet, component_dofs, surface_load
from repro.fem.nonlinear import solve_nonlinear_contact
from repro.io import JOURNAL_VERSION, JournalError, read_journal, write_journal
from repro.parallel import DistributedSystem, parallel_cg, partition_nodes_rcb
from repro.precond import DiagonalScaling, bic
from repro.resilience import (
    CGCheckpointStore,
    DeadRankComm,
    FailureReason,
    FaultSpec,
    FaultyComm,
    RankFailure,
    SolveEvent,
    SolveReport,
)
from repro.resilience.checkpoint import AlmJournal, fingerprint_arrays


# ----------------------------------------------------------------------
# journal container: versioned, checksummed, atomic
# ----------------------------------------------------------------------


class TestJournalContainer:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "j.bin"
        arrays = {"u": np.arange(12.0), "ids": np.array([3, 1, 4])}
        meta = {"cycle": 3, "penalty": 1e4, "nested": {"a": [1, 2]}}
        write_journal(path, arrays, meta)
        got_arrays, got_meta = read_journal(path)
        assert np.array_equal(got_arrays["u"], arrays["u"])
        assert np.array_equal(got_arrays["ids"], arrays["ids"])
        assert got_meta == {"cycle": 3, "penalty": 1e4, "nested": {"a": [1, 2]}}
        # no stray temp files left behind
        assert list(tmp_path.iterdir()) == [path]

    def test_corrupted_payload_rejected(self, tmp_path):
        path = tmp_path / "j.bin"
        write_journal(path, {"u": np.ones(4)}, {"k": 1})
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(JournalError, match="checksum"):
            read_journal(path)

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "j.bin"
        write_journal(path, {"u": np.ones(4)}, {"k": 1})
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(JournalError, match="truncated"):
            read_journal(path)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "j.bin"
        path.write_bytes(b"NOTMINE!" + b"\x00" * 64)
        with pytest.raises(JournalError, match="magic"):
            read_journal(path)

    def test_future_version_rejected(self, tmp_path):
        path = tmp_path / "j.bin"
        write_journal(path, {"u": np.ones(2)}, {})
        raw = bytearray(path.read_bytes())
        raw[8:10] = (JOURNAL_VERSION + 1).to_bytes(2, "little")
        path.write_bytes(bytes(raw))
        with pytest.raises(JournalError, match="version"):
            read_journal(path)


class TestAlmJournal:
    def test_fingerprint_mismatch_rejected(self, tmp_path):
        path = tmp_path / "alm.ckpt"
        j1 = AlmJournal(path, fingerprint_arrays(np.ones(3), 1e4))
        j1.save(
            cycle=1, u=np.ones(6), lam=np.zeros(3), penalty=1e4, backoffs=0,
            cg_iterations=[5], penalty_trail=[1e4], gap_norm=0.1,
            converged=False, report=SolveReport(),
        )
        j2 = AlmJournal(path, fingerprint_arrays(np.ones(3), 1e6))
        with pytest.raises(JournalError, match="different run"):
            j2.load()

    def test_missing_file_loads_none(self, tmp_path):
        j = AlmJournal(tmp_path / "absent.ckpt", "abc")
        assert j.load() is None

    def test_fingerprint_sensitivity(self):
        a = np.arange(4.0)
        assert fingerprint_arrays(a, 1.0) == fingerprint_arrays(a.copy(), 1.0)
        assert fingerprint_arrays(a, 1.0) != fingerprint_arrays(a + 1, 1.0)
        assert fingerprint_arrays(a, 1.0) != fingerprint_arrays(a, 2.0)
        # dtype and shape are part of the identity, not just the bytes
        assert fingerprint_arrays(a) != fingerprint_arrays(a.astype(np.float32))
        assert fingerprint_arrays(a) != fingerprint_arrays(a.reshape(2, 2))


# ----------------------------------------------------------------------
# CG in-memory checkpoint + rollback
# ----------------------------------------------------------------------


def _system(problem, ndomains=3, factory=None):
    part = partition_nodes_rcb(problem.mesh.coords, ndomains)
    if factory is None:
        factory = lambda sub, nodes: bic(sub, fill_level=0)  # noqa: E731
    return DistributedSystem.from_global(problem.a, problem.b, part, factory)


class TestCGCheckpointRollback:
    def test_store_save_restore(self):
        store = CGCheckpointStore(interval=5)
        x = [np.arange(3.0)]
        r = [np.ones(3)]
        p = [np.zeros(3)]
        assert store.due(0)
        store.save(4, x, r, p, 2.5, 3)
        x[0][:] = -1.0  # diverge after the snapshot
        ck = store.restore(x, r, p)
        assert ck.iteration == 4 and ck.rz == 2.5 and ck.history_len == 3
        assert np.array_equal(x[0], np.arange(3.0))
        assert not store.due(4)
        assert store.due(5)

    def test_transient_fault_rolls_back_to_fault_free_answer(
        self, block_problem_small
    ):
        ref = parallel_cg(_system(block_problem_small))
        system = _system(block_problem_small)
        system.comm = FaultyComm(
            system.domains, [FaultSpec(exchange=7, kind="bitflip")], seed=3
        )
        report = SolveReport()
        res = parallel_cg(system, checkpoint_interval=5, report=report)
        assert res.converged
        assert len(system.comm.injected) == 1
        assert np.array_equal(res.x, ref.x)  # bit-exact rejoin
        kinds = [e.kind for e in report.events]
        assert "detect" in kinds and "recover" in kinds

    def test_without_checkpointing_fault_still_aborts(self, block_problem_small):
        system = _system(block_problem_small)
        system.comm = FaultyComm(
            system.domains, [FaultSpec(exchange=7, kind="bitflip")], seed=3
        )
        res = parallel_cg(system)
        assert not res.converged
        assert res.reason is FailureReason.COMM_FAULT


# ----------------------------------------------------------------------
# rank failure: heartbeat probe + local-failure-local-recovery
# ----------------------------------------------------------------------


class TestRankFailureRecovery:
    def test_dead_rank_recovers_bit_exact(self, block_problem_small):
        ref = parallel_cg(_system(block_problem_small))
        system = _system(block_problem_small)
        system.enable_recovery()
        system.comm = DeadRankComm(system.domains, victim=1, kill_at_exchange=5)
        report = SolveReport()
        res = parallel_cg(system, checkpoint_interval=4, report=report)
        assert res.converged
        assert system.comm.kills == [{"rank": 1, "exchange": 6}] or (
            len(system.comm.kills) == 1 and system.comm.kills[0]["rank"] == 1
        )
        assert len(system.comm.revivals) == 1
        assert np.array_equal(res.x, ref.x)
        reasons = [e.reason for e in report.detections()]
        assert FailureReason.RANK_FAILURE in reasons

    def test_durable_disk_recovery(self, block_problem_small, tmp_path):
        """Recovery from on-disk domain files, not in-memory clones."""
        ref = parallel_cg(_system(block_problem_small))
        system = _system(block_problem_small)
        system.enable_recovery(directory=tmp_path)
        assert (tmp_path / "domain.1.npz").exists()
        system.comm = DeadRankComm(system.domains, victim=2, kill_at_exchange=3)
        res = parallel_cg(system, checkpoint_interval=4)
        assert res.converged
        assert np.array_equal(res.x, ref.x)

    def test_slow_but_alive_rank_survives_probes(self, block_problem_small):
        """A rank that misses a few heartbeats but is alive must NOT be
        declared dead — the bounded retry loop absorbs the slowness."""
        ref = parallel_cg(_system(block_problem_small))
        system = _system(block_problem_small)
        system.comm = DeadRankComm(
            system.domains, victim=0, kill_at_exchange=10**9, slow={2: 2}
        )
        res = parallel_cg(system)
        assert res.converged
        assert system.comm.kills == []
        assert np.array_equal(res.x, ref.x)

    def test_probe_exhaustion_raises_rank_failure(self, block_problem_small):
        system = _system(block_problem_small)
        comm = DeadRankComm(system.domains, victim=1, kill_at_exchange=10**9)
        comm.kill(1)
        with pytest.raises(RankFailure) as exc:
            comm.probe_ranks()
        assert exc.value.rank == 1
        assert "unresponsive" in str(exc.value)

    def test_kill_without_recovery_store_aborts(self, block_problem_small):
        """No enable_recovery(): the failure is detected, not masked."""
        system = _system(block_problem_small)
        system.comm = DeadRankComm(system.domains, victim=1, kill_at_exchange=5)
        res = parallel_cg(system, checkpoint_interval=4)
        assert not res.converged
        assert res.reason is FailureReason.RANK_FAILURE

    def test_recover_rank_requires_enable_recovery(self, block_problem_small):
        system = _system(block_problem_small)
        assert not system.can_recover
        with pytest.raises(RuntimeError, match="enable_recovery"):
            system.recover_rank(0)

    def test_diagonal_precond_recovery(self, block_problem_small):
        """Recovery path without a cached symbolic (diagonal rebuilds via
        the factory)."""
        fac = lambda sub, nodes: DiagonalScaling(sub)  # noqa: E731
        ref = parallel_cg(_system(block_problem_small, factory=fac))
        system = _system(block_problem_small, factory=fac)
        system.enable_recovery()
        system.comm = DeadRankComm(system.domains, victim=1, kill_at_exchange=5)
        res = parallel_cg(system, checkpoint_interval=4)
        assert res.converged
        assert np.array_equal(res.x, ref.x)


# ----------------------------------------------------------------------
# durable ALM restart
# ----------------------------------------------------------------------


class _Kill(Exception):
    pass


@pytest.fixture(scope="module")
def free_system(block_mesh_small):
    """Penalty-free stiffness for the nonlinear loop (it adds its own)."""
    mesh = block_mesh_small
    k = assemble_stiffness(mesh)
    f = surface_load(mesh, mesh.node_sets["zmax"], np.array([0.0, 0.0, -1.0]))
    fixed = np.unique(
        np.concatenate(
            [
                all_dofs(mesh.node_sets["zmin"]),
                component_dofs(mesh.node_sets["xmin"], 0),
                component_dofs(mesh.node_sets["ymin"], 1),
            ]
        )
    )
    a_free, b = apply_dirichlet(k.to_csr(), f, fixed)
    return mesh, a_free, b


class TestDurableAlmRestart:
    def _solve(self, free_system, **kw):
        mesh, a_free, b = free_system
        return solve_nonlinear_contact(
            a_free,
            b,
            mesh.contact_groups,
            mesh.n_nodes,
            1e4,
            lambda a: bic(a, fill_level=0),
            max_cycles=30,
            **kw,
        )

    def test_kill_and_resume_bit_exact(self, free_system, tmp_path):
        ref = self._solve(free_system)
        ck = tmp_path / "alm.ckpt"

        def killer(cycle, info):
            assert {"penalty", "gap_norm", "cg_iterations"} <= info.keys()
            if cycle == 1:
                raise _Kill

        with pytest.raises(_Kill):
            self._solve(free_system, checkpoint_path=ck, cycle_callback=killer)
        assert ck.exists()
        res = self._solve(free_system, checkpoint_path=ck)
        assert res.converged == ref.converged
        assert res.cycles == ref.cycles
        assert res.resumed_from_cycle == 1
        assert np.array_equal(res.u, ref.u)
        assert res.penalty_trail == ref.penalty_trail
        # resumed report keeps the journaled pre-kill trail
        assert any(e.kind == "info" and "resum" in e.detail for e in res.report.events)

    def test_resume_of_finished_run_is_idempotent(self, free_system, tmp_path):
        ck = tmp_path / "alm.ckpt"
        ref = self._solve(free_system, checkpoint_path=ck)
        again = self._solve(free_system, checkpoint_path=ck)
        assert again.converged and again.cycles == ref.cycles
        assert np.array_equal(again.u, ref.u)

    def test_corrupt_journal_refused(self, free_system, tmp_path):
        ck = tmp_path / "alm.ckpt"
        self._solve(free_system, checkpoint_path=ck)
        raw = bytearray(ck.read_bytes())
        raw[-3] ^= 0xFF
        ck.write_bytes(bytes(raw))
        with pytest.raises(JournalError, match="checksum"):
            self._solve(free_system, checkpoint_path=ck)

    def test_changed_inputs_refused(self, free_system, tmp_path):
        mesh, a_free, b = free_system
        ck = tmp_path / "alm.ckpt"
        self._solve(free_system, checkpoint_path=ck)
        with pytest.raises(JournalError, match="different run"):
            solve_nonlinear_contact(
                a_free,
                b * 2.0,  # different load -> different fingerprint
                mesh.contact_groups,
                mesh.n_nodes,
                1e4,
                lambda a: bic(a, fill_level=0),
                max_cycles=30,
                checkpoint_path=ck,
            )


# ----------------------------------------------------------------------
# satellites: SolveReport JSON round trip, repr normalization
# ----------------------------------------------------------------------


class TestReportJsonRoundTrip:
    def test_round_trip(self):
        rep = SolveReport()
        rep.record("detect", "parallel_cg", FailureReason.RANK_FAILURE,
                   iteration=5, detail="rank 1 unresponsive", rank=np.int64(1))
        rep.record("recover", "parallel_cg", iteration=4, detail="rolled back")
        got = SolveReport.from_json(rep.to_json())
        assert len(got.events) == 2
        assert got.events[0].reason is FailureReason.RANK_FAILURE
        assert got.events[0].iteration == 5
        assert got.events[0].data["rank"] == 1
        assert got.events[1].reason is None
        assert got.to_json() == rep.to_json()

    def test_bad_payload_rejected(self):
        with pytest.raises(ValueError):
            SolveReport.from_json("{}")

    def test_event_dict_round_trip(self):
        e = SolveEvent(kind="detect", stage="s", reason=FailureReason.CONVERGED)
        assert SolveEvent.from_dict(e.to_dict()).reason is FailureReason.CONVERGED


class TestConvergedReason:
    def test_parallel_cg_converged_reason(self, block_problem_small):
        res = parallel_cg(_system(block_problem_small))
        assert res.converged
        assert res.reason is FailureReason.CONVERGED
        assert not res.reason.is_failure
        assert "None" not in repr(res)

    def test_rank_failure_is_failure(self):
        assert FailureReason.RANK_FAILURE.is_failure
