"""Hardened serving layer: worker pool, admission control, deadlines,
fault isolation, journal retention.

The robustness properties of the concurrency tentpole live here:

- pooled solves (thread and process mode) are **bit-identical** to the
  serial batch path — concurrency is across groups, never inside one;
- a crashed or wedged worker settles only its own group's jobs (with a
  structured ``worker_crash`` / ``request_timeout`` answer + quarantine
  record) while every other group keeps solving, and the pool replaces
  the lost worker so capacity never decays;
- the admission front refuses work *structurally*: full queue →
  ``overloaded``, oversized payload → ``poisoned_payload``, deadline
  expired while queued → ``request_timeout`` — never an exception;
- journal retention compacts finished request/result pairs without ever
  touching an in-flight job's request journal.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.io.journal import write_journal
from repro.serve import (
    AdmissionController,
    AdmissionPolicy,
    JobQueue,
    ProtocolError,
    RetentionPolicy,
    SolveRequest,
    SolverSession,
    WorkerPool,
)
from repro.serve.queue import _request_journal_parts

SCALE = 0.25  # smallest block model: fast enough for per-test batches
POOL_PRECONDS = ("sbbic0", "bic0", "ic0")


def _req(**kw) -> SolveRequest:
    base = dict(model="block", scale=SCALE, penalty=1e4, precond="sbbic0")
    base.update(kw)
    return SolveRequest(**base)


@pytest.fixture(scope="module")
def session() -> SolverSession:
    """One warm session shared across tests (it is thread-safe; pools
    attach to it rather than owning it)."""
    s = SolverSession(warm_kernels=False)
    s.solve_batch([_req(job_id=f"warm-{p}", precond=p) for p in POOL_PRECONDS])
    return s


# -- protocol hardening ----------------------------------------------------


class TestProtocolHardening:
    def test_priority_clamped_at_boundary(self):
        assert _req(priority=7).priority == 7
        assert _req(priority=-100).priority == -100
        with pytest.raises(ProtocolError, match="priority"):
            _req(priority=101)

    def test_deadline_must_be_positive_finite(self):
        assert _req(deadline_s=2.5).deadline_s == 2.5
        with pytest.raises(ProtocolError, match="deadline_s"):
            _req(deadline_s=0.0)
        with pytest.raises(ProtocolError, match="deadline_s"):
            _req(deadline_s=float("inf"))

    def test_remaining_counts_from_admission(self):
        r = _req(deadline_s=10.0)
        r.submitted_at = 100.0
        assert r.remaining_s(104.0) == pytest.approx(6.0)
        assert _req().remaining_s(104.0) is None  # no deadline

    def test_nonfinite_rhs_refused_at_protocol_boundary(self):
        with pytest.raises(ProtocolError, match="non-finite"):
            _req(rhs=[1.0, float("nan"), 3.0])
        with pytest.raises(ProtocolError, match="non-finite"):
            _req(rhs=[1.0, float("inf")])

    def test_non_flat_rhs_refused(self):
        with pytest.raises(ProtocolError, match="flat"):
            _req(rhs=[[1.0, 2.0], [3.0, 4.0]])

    def test_chaos_field_gated_on_environment(self, monkeypatch):
        wire = {"id": "c1", "model": "block", "scale": SCALE,
                "chaos": {"kind": "crash"}}
        monkeypatch.delenv("REPRO_SERVE_CHAOS", raising=False)
        with pytest.raises(ProtocolError, match="unknown request fields"):
            SolveRequest.from_dict(dict(wire))
        monkeypatch.setenv("REPRO_SERVE_CHAOS", "1")
        req = SolveRequest.from_dict(dict(wire))
        assert req.chaos == {"kind": "crash"}
        # a chaos request never coalesces with its neighbours
        assert req.solve_key() != _req(job_id="c2", scale=SCALE).solve_key()

    def test_chaos_kind_validated(self):
        with pytest.raises(ProtocolError, match="chaos"):
            _req(chaos={"kind": "meltdown"})


# -- admission control -------------------------------------------------------


class TestAdmission:
    def test_full_queue_answers_overloaded(self, session):
        queue = JobQueue(
            session=session,
            admission=AdmissionController(AdmissionPolicy(max_queue_depth=1)),
        )
        first = queue.submit(_req(job_id="adm-1"))
        second = queue.submit(_req(job_id="adm-2"))
        assert first.state == "pending"
        assert second.state == "rejected"
        assert second.response is not None
        assert not second.response.ok
        assert second.response.reason == "overloaded"
        # the admitted job still solves
        queue.process()
        assert first.state == "done" and first.response.converged
        st = queue.stats()["admission"]
        assert st["admitted"] == 1
        assert st["rejected"] == {"overloaded": 1}

    def test_oversized_payload_refused_before_journaling(self, session, tmp_path):
        queue = JobQueue(
            session=session, journal_dir=tmp_path,
            admission=AdmissionController(
                AdmissionPolicy(max_payload_bytes=64)
            ),
        )
        job = queue.submit(_req(job_id="adm-big", rhs=[1.0] * 100))
        assert job.state == "rejected"
        assert job.response.reason == "poisoned_payload"
        assert list(tmp_path.glob("*.jnl")) == []  # never journaled

    def test_deadline_expired_in_queue_refused_at_dispatch(self, session):
        admission = AdmissionController(AdmissionPolicy())
        queue = JobQueue(session=session, admission=admission)
        job = queue.submit(_req(job_id="adm-late", deadline_s=0.01))
        time.sleep(0.05)
        queue.process()
        assert job.state == "rejected"
        assert job.response.reason == "request_timeout"
        assert admission.deadline_expired == 1

    def test_queue_wait_counts_from_server_receipt(self, session):
        """Regression: admission used to restamp ``submitted_at``
        unconditionally, resetting the deadline clock of a request that
        had already waited at the server — a job 10s past a 5s deadline
        would dispatch anyway.  The receipt stamp must be set once and
        preserved through screening."""
        admission = AdmissionController(AdmissionPolicy())
        queue = JobQueue(session=session, admission=admission)
        req = _req(job_id="adm-stale", deadline_s=5.0)
        # simulate a request the server took 10s ago (front-end queueing)
        req.submitted_at = time.monotonic() - 10.0
        job = queue.submit(req)
        assert job.state == "pending"  # refusal happens at dispatch
        assert req.submitted_at < time.monotonic() - 9.0  # not restamped
        queue.process()
        assert job.state == "rejected"
        assert job.response.reason == "request_timeout"
        assert admission.deadline_expired == 1

    def test_client_submitted_at_is_trace_only(self, session):
        """A client's wall-clock ``submitted_at`` rides the wire for
        tracing but never enters deadline arithmetic: wall clocks share
        no epoch with the server's monotonic clock."""
        wall = 1.7e9  # epoch seconds, wildly different from monotonic
        req = SolveRequest.from_dict({
            "id": "adm-wall", "model": "block", "scale": SCALE,
            "penalty": 1e4, "precond": "sbbic0",
            "deadline_s": 30.0, "submitted_at": wall,
        })
        assert req.client_submitted_at == wall
        assert req.submitted_at is None  # server stamp untouched
        assert req.to_dict()["submitted_at"] == wall  # journaled for tracing
        queue = JobQueue(
            session=session, admission=AdmissionController(AdmissionPolicy())
        )
        job = queue.submit(req)
        # deadline budget is measured from server receipt, so the huge
        # client/server clock skew must not have consumed any of it
        remaining = req.remaining_s(time.monotonic())
        assert remaining == pytest.approx(30.0, abs=1.0)
        queue.process()
        assert job.state == "done" and job.response.converged

    def test_default_deadline_stamped_at_admission(self, session):
        admission = AdmissionController(
            AdmissionPolicy(default_deadline_s=30.0)
        )
        queue = JobQueue(session=session, admission=admission)
        job = queue.submit(_req(job_id="adm-default"))
        assert job.request.deadline_s == 30.0
        assert job.request.submitted_at is not None

    def test_quarantine_ring_is_bounded(self):
        from repro.serve.admission import QuarantineRecord

        admission = AdmissionController(AdmissionPolicy(quarantine_keep=3))
        for i in range(10):
            admission.quarantine(
                QuarantineRecord(job_id=f"q-{i}", reason="worker_crash")
            )
        records = admission.quarantine_records()
        assert len(records) == 3
        assert [r.job_id for r in records] == ["q-7", "q-8", "q-9"]
        assert admission.stats()["quarantined"] == 10


# -- priority ordering --------------------------------------------------------


class TestPriorityOrdering:
    def test_high_priority_groups_solve_first(self, session):
        reqs = [
            _req(job_id="lo", precond="sbbic0", priority=0),
            _req(job_id="hi", precond="bic0", priority=9),
            _req(job_id="mid", precond="ic0", priority=4),
        ]
        prepared, _ = session.prepare_batch(reqs)
        groups = session.group_batch(prepared)
        order = [prepared[idxs[0]]["req"].job_id for idxs in groups.values()]
        assert order == ["hi", "mid", "lo"]

    def test_all_default_priorities_keep_submission_order(self, session):
        reqs = [
            _req(job_id="a", precond="bic0"),
            _req(job_id="b", precond="sbbic0"),
        ]
        prepared, _ = session.prepare_batch(reqs)
        groups = session.group_batch(prepared)
        order = [prepared[idxs[0]]["req"].job_id for idxs in groups.values()]
        assert order == ["a", "b"]


# -- journal retention --------------------------------------------------------


class TestRetention:
    def test_policy_validates(self):
        with pytest.raises(ValueError):
            RetentionPolicy(keep_last=-1)
        with pytest.raises(ValueError):
            RetentionPolicy(max_bytes=-1)
        assert not RetentionPolicy().enabled
        assert RetentionPolicy(keep_last=5).enabled

    def test_keep_last_compacts_oldest_finished_pairs(self, session, tmp_path):
        queue = JobQueue(
            session=session, journal_dir=tmp_path,
            retention=RetentionPolicy(keep_last=1),
        )
        for i in range(3):
            queue.submit(_req(job_id=f"ret-{i}"))
            queue.process()
            time.sleep(0.02)  # distinct mtimes order the compaction
        pairs = sorted(p.name for p in tmp_path.glob("*.jnl"))
        assert pairs == ["ret-2.req.jnl", "ret-2.res.jnl"]
        journal = queue.stats()["journal"]
        assert journal["files"] == 2
        assert journal["compacted_files"] == 4
        assert journal["compacted_bytes"] > 0

    def test_max_bytes_budget(self, session, tmp_path):
        queue = JobQueue(
            session=session, journal_dir=tmp_path,
            retention=RetentionPolicy(max_bytes=0),
        )
        queue.submit(_req(job_id="ret-b"))
        queue.process()
        assert list(tmp_path.glob("*.jnl")) == []

    def test_inflight_request_journal_never_compacted(self, session, tmp_path):
        queue = JobQueue(
            session=session, journal_dir=tmp_path,
            retention=RetentionPolicy(keep_last=0),
        )
        # a request journal without a result is exactly what resume()
        # recovers — compaction must leave it alone
        arrays, meta = _request_journal_parts(_req(job_id="inflight"))
        write_journal(queue._req_path("inflight"), arrays, meta)
        queue.compact()
        assert queue._req_path("inflight").exists()


# -- worker pool: thread mode -------------------------------------------------


class TestWorkerPoolThread:
    def test_constructor_validates(self, session):
        with pytest.raises(ValueError):
            WorkerPool(session, workers=0)
        with pytest.raises(ValueError):
            WorkerPool(session, mode="fiber")
        with pytest.raises(ValueError):
            WorkerPool(session, solve_timeout_s=0.0)

    def test_pooled_answers_bit_identical_to_serial(self, session):
        def batch():
            return [
                _req(job_id=f"bit-{p}", precond=p) for p in POOL_PRECONDS
            ]

        serial = session.solve_batch(batch())
        with WorkerPool(session, workers=3, mode="thread") as pool:
            pooled = pool.solve_batch(batch())
        assert all(r.ok and r.converged for r in pooled)
        assert [r.x_sha256 for r in pooled] == [r.x_sha256 for r in serial]
        assert [r.job_id for r in pooled] == [r.job_id for r in serial]

    def test_crash_isolated_to_its_own_group(self, session):
        admission = AdmissionController(AdmissionPolicy())
        pool = WorkerPool(session, workers=2, mode="thread",
                          admission=admission)
        try:
            out = pool.solve_batch([
                _req(job_id="ok-1"),
                _req(job_id="boom", chaos={"kind": "crash"}),
                _req(job_id="ok-2", precond="bic0"),
            ])
            by_id = {r.job_id: r for r in out}
            assert by_id["ok-1"].ok and by_id["ok-1"].converged
            assert by_id["ok-2"].ok and by_id["ok-2"].converged
            assert not by_id["boom"].ok
            assert by_id["boom"].reason == "worker_crash"
            # the fault is observable and capacity was restored
            assert admission.stats()["quarantined"] >= 1
            stats = pool.stats()
            assert stats["crashes"] == 1
            assert stats["replaced_workers"] >= 1
            # the pool keeps serving after the fault
            again = pool.solve_batch([_req(job_id="after-crash")])
            assert again[0].ok and again[0].converged
        finally:
            pool.close()

    def test_wedged_worker_abandoned_at_deadline(self, session):
        admission = AdmissionController(AdmissionPolicy())
        pool = WorkerPool(session, workers=2, mode="thread",
                          admission=admission)
        try:
            t0 = time.monotonic()
            out = pool.solve_batch([
                _req(job_id="stuck", deadline_s=0.3,
                     chaos={"kind": "wedge", "seconds": 5.0}),
                _req(job_id="fine"),
            ])
            elapsed = time.monotonic() - t0
            by_id = {r.job_id: r for r in out}
            assert not by_id["stuck"].ok
            assert by_id["stuck"].reason == "request_timeout"
            assert by_id["fine"].ok and by_id["fine"].converged
            assert elapsed < 4.0  # answered at the deadline, not the wedge
            assert pool.stats()["timeouts"] == 1
            assert pool.stats()["replaced_workers"] >= 1
        finally:
            pool.close()

    def test_per_worker_tallies_sum_to_completed(self, session):
        with WorkerPool(session, workers=2, mode="thread") as pool:
            pool.solve_batch(
                [_req(job_id=f"tally-{p}", precond=p) for p in POOL_PRECONDS]
            )
            stats = pool.stats()
        assert sum(stats["per_worker"].values()) == stats["completed"] == 3
        assert stats["mode"] == "thread" and stats["workers"] == 2

    def test_close_is_idempotent(self, session):
        pool = WorkerPool(session, workers=1, mode="thread")
        pool.close()
        pool.close()


# -- worker pool: process mode ------------------------------------------------


class TestWorkerPoolProcess:
    def test_pooled_answers_bit_identical_to_serial(self, session):
        def batch():
            return [
                _req(job_id=f"pbit-{p}", precond=p)
                for p in POOL_PRECONDS[:2]
            ]

        serial = session.solve_batch(batch())
        with WorkerPool(session, workers=2, mode="process") as pool:
            pooled = pool.solve_batch(batch())
        assert all(r.ok and r.converged for r in pooled)
        assert [r.x_sha256 for r in pooled] == [r.x_sha256 for r in serial]

    def test_child_death_classified_and_respawned(self, session):
        admission = AdmissionController(AdmissionPolicy())
        pool = WorkerPool(session, workers=1, mode="process",
                          admission=admission)
        try:
            out = pool.solve_batch(
                [_req(job_id="pboom", chaos={"kind": "crash"})]
            )
            assert not out[0].ok
            assert out[0].reason == "worker_crash"
            assert pool.stats()["crashes"] == 1
            # the replacement child serves the next batch
            again = pool.solve_batch([_req(job_id="pafter")])
            assert again[0].ok and again[0].converged
            assert admission.stats()["quarantined"] >= 1
        finally:
            pool.close()

    def test_wedged_child_killed_at_deadline(self, session):
        pool = WorkerPool(session, workers=1, mode="process")
        try:
            t0 = time.monotonic()
            out = pool.solve_batch([
                _req(job_id="pstuck", deadline_s=0.3,
                     chaos={"kind": "wedge", "seconds": 10.0}),
            ])
            elapsed = time.monotonic() - t0
            assert not out[0].ok
            assert out[0].reason == "request_timeout"
            assert elapsed < 8.0  # killed at the deadline, not the wedge
            assert pool.stats()["timeouts"] == 1
        finally:
            pool.close()


# -- queue + pool integration --------------------------------------------------


class TestQueueWithPool:
    def test_stats_shape_has_every_section(self, session, tmp_path):
        pool = WorkerPool(session, workers=2, mode="thread")
        queue = JobQueue(
            session=session, journal_dir=tmp_path, pool=pool,
            admission=AdmissionController(AdmissionPolicy()),
            retention=RetentionPolicy(keep_last=8),
        )
        try:
            queue.submit(_req(job_id="stats-1"))
            queue.process()
            st = queue.stats()
        finally:
            pool.close()
        assert st["jobs"]["done"] == 1
        assert {"files", "bytes", "compacted_files", "compacted_bytes"} \
            <= set(st["journal"])
        assert {"admitted", "rejected", "deadline_expired", "quarantined"} \
            <= set(st["admission"])
        assert {"dispatched", "completed", "timeouts", "crashes",
                "per_worker"} <= set(st["pool"])

    def test_pooled_queue_matches_serial_queue(self, session, tmp_path):
        serial_q = JobQueue(session=session)
        for i in range(4):
            serial_q.submit(_req(job_id=f"sq-{i}", rhs={"seed": i}))
        serial_jobs = serial_q.process()

        pool = WorkerPool(session, workers=2, mode="thread")
        pooled_q = JobQueue(session=session, pool=pool)
        try:
            for i in range(4):
                pooled_q.submit(_req(job_id=f"sq-{i}", rhs={"seed": i}))
            pooled_jobs = pooled_q.process()
        finally:
            pool.close()
        assert [j.response.x_sha256 for j in pooled_jobs] == \
            [j.response.x_sha256 for j in serial_jobs]

    def test_rejected_jobs_appear_in_requests_table(self, session):
        from repro import obs
        from repro.obs.export import requests_table

        with obs.observe() as sess:
            queue = JobQueue(
                session=session,
                admission=AdmissionController(
                    AdmissionPolicy(max_queue_depth=1)
                ),
            )
            queue.submit(_req(job_id="tbl-ok"))
            queue.submit(_req(job_id="tbl-refused"))
            queue.process()
            table = requests_table(sess.tracer)
        assert "reason" in table.splitlines()[0]
        assert "tbl-refused" in table
        assert "overloaded" in table
