import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reorder import adjacency_from_pattern, multicolor
from repro.sparse.djds import _size_runs, build_djds
from repro.sparse.storage import storage_census


def laplacian_csr(n, seed=0):
    rng = np.random.default_rng(seed)
    m = sp.random(n, n, density=0.3, random_state=np.random.RandomState(seed))
    a = (m + m.T).tocsr()
    a.setdiag(np.asarray(abs(a).sum(axis=1)).reshape(-1) + 1.0)
    a.sum_duplicates()
    a.sort_indices()
    return a


def coloring_of(a, ncolors=0):
    return multicolor(adjacency_from_pattern(a), ncolors)


class TestSizeRuns:
    def test_uniform_one_run(self):
        assert _size_runs(np.array([3, 3, 3])) == [(0, 3)]

    def test_alternating_fragments(self):
        assert _size_runs(np.array([1, 2, 1])) == [(0, 1), (1, 2), (2, 3)]

    def test_empty(self):
        assert _size_runs(np.array([], dtype=int)) == []


class TestDJDSMatvec:
    @pytest.mark.parametrize("npe", [1, 2, 8])
    def test_matvec_equals_csr(self, npe):
        a = laplacian_csr(30, seed=1)
        col = coloring_of(a)
        d = build_djds(a, col, npe=npe)
        x = np.random.default_rng(2).normal(size=30)
        assert np.allclose(d.matvec(x), a @ x)

    def test_matvec_with_size_sorting(self):
        a = laplacian_csr(24, seed=3)
        col = coloring_of(a)
        sizes = np.random.default_rng(4).integers(1, 4, size=24)
        d = build_djds(a, col, npe=4, sizes=sizes, sort_by_size=True)
        x = np.random.default_rng(5).normal(size=24)
        assert np.allclose(d.matvec(x), a @ x)

    def test_dummies_do_not_change_matvec(self):
        a = laplacian_csr(20, seed=6)
        col = coloring_of(a)
        d_pad = build_djds(a, col, npe=2, pad_dummies=True)
        d_nopad = build_djds(a, col, npe=2, pad_dummies=False)
        x = np.random.default_rng(7).normal(size=20)
        assert np.allclose(d_pad.matvec(x), d_nopad.matvec(x))

    def test_matvec_shape_check(self):
        a = laplacian_csr(8)
        d = build_djds(a, coloring_of(a))
        with pytest.raises(ValueError, match="shape"):
            d.matvec(np.zeros(9))


class TestDJDSStats:
    def test_loop_lengths_sum_to_entries(self):
        a = laplacian_csr(25, seed=8)
        col = coloring_of(a)
        d = build_djds(a, col, npe=2, pad_dummies=False)
        offdiag = a.nnz - np.count_nonzero(a.diagonal())
        assert d.stats.loop_lengths.sum() == offdiag

    def test_dummy_count_nonnegative_and_counted(self):
        a = laplacian_csr(25, seed=9)
        col = coloring_of(a)
        sizes = np.random.default_rng(10).integers(1, 4, size=25)
        d = build_djds(a, col, npe=2, sizes=sizes, sort_by_size=True, pad_dummies=True)
        offdiag = a.nnz - np.count_nonzero(a.diagonal())
        assert d.stats.n_dummy >= 0
        assert d.stats.loop_lengths.sum() == offdiag + d.stats.n_dummy

    def test_rows_per_pe_cover_all(self):
        a = laplacian_csr(23, seed=11)
        d = build_djds(a, coloring_of(a), npe=4)
        assert d.stats.rows_per_pe.sum() == 23

    def test_unsorted_fragments_more(self):
        # ring graph: every row has exactly 2 off-diagonals, so the only
        # fragmentation source is the block-size interleaving.
        n = 40
        ring = sp.diags([np.ones(n - 1), np.ones(n - 1)], [1, -1], shape=(n, n)).tolil()
        ring[0, n - 1] = 1
        ring[n - 1, 0] = 1
        a = sp.csr_matrix(ring) + sp.eye(n)
        a = sp.csr_matrix(a)
        col = coloring_of(a)
        sizes = np.tile([1, 3], n // 2)
        sorted_d = build_djds(a, col, npe=2, sizes=sizes, sort_by_size=True)
        unsorted_d = build_djds(a, col, npe=2, sizes=sizes, sort_by_size=False)
        assert unsorted_d.stats.average_vector_length <= sorted_d.stats.average_vector_length

    def test_sort_by_size_requires_sizes(self):
        a = laplacian_csr(6)
        with pytest.raises(ValueError, match="sizes"):
            build_djds(a, coloring_of(a), sort_by_size=True)

    def test_npe_validation(self):
        a = laplacian_csr(6)
        with pytest.raises(ValueError, match="npe"):
            build_djds(a, coloring_of(a), npe=0)

    def test_imbalance_zero_when_divisible(self):
        a = laplacian_csr(16, seed=13)
        d = build_djds(a, coloring_of(a, ncolors=0), npe=1)
        assert d.stats.load_imbalance_percent == 0.0


class TestStorageCensus:
    def test_pdjds_longer_loops_than_pdcrs(self):
        # banded matrix (structured-mesh-like): few colors, long jagged
        # diagonals vs. short per-row loops.
        n = 400
        a = sp.diags(
            [np.ones(n - o) for o in (1, 2, 3)] + [np.ones(n - o) for o in (1, 2, 3)],
            [1, 2, 3, -1, -2, -3],
            shape=(n, n),
        ).tocsr() + sp.eye(n).tocsr()
        a = sp.csr_matrix(a)
        col = coloring_of(a)
        pdjds = storage_census(a, col, "pdjds", npe=1)
        pdcrs = storage_census(a, col, "pdcrs", npe=1)
        assert pdjds.average_loop_length > 2 * pdcrs.average_loop_length
        assert pdjds.vectorizable and pdcrs.vectorizable

    def test_crs_not_vectorizable(self):
        a = laplacian_csr(20, seed=15)
        c = storage_census(a, coloring_of(a), "crs")
        assert not c.vectorizable

    def test_unknown_scheme(self):
        a = laplacian_csr(10)
        with pytest.raises(ValueError, match="scheme"):
            storage_census(a, coloring_of(a), "bogus")

    def test_total_entries_consistent(self):
        a = laplacian_csr(20, seed=16)
        col = coloring_of(a)
        c = storage_census(a, col, "pdcrs")
        offdiag = a.nnz - np.count_nonzero(a.diagonal())
        assert c.total_entries == offdiag


@settings(max_examples=20, deadline=None)
@given(n=st.integers(5, 30), seed=st.integers(0, 1000), npe=st.integers(1, 8))
def test_property_djds_matvec(n, seed, npe):
    a = laplacian_csr(n, seed=seed)
    col = coloring_of(a)
    d = build_djds(a, col, npe=npe)
    x = np.random.default_rng(seed).normal(size=n)
    assert np.allclose(d.matvec(x), a @ x)
