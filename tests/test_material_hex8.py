import numpy as np
import pytest

from repro.fem.hex8 import hex8_stiffness, shape_gradients_reference
from repro.fem.material import IsotropicElastic

UNIT_CUBE = np.array(
    [
        [0, 0, 0], [1, 0, 0], [1, 1, 0], [0, 1, 0],
        [0, 0, 1], [1, 0, 1], [1, 1, 1], [0, 1, 1],
    ],
    dtype=float,
)


class TestMaterial:
    def test_lame_parameters(self):
        m = IsotropicElastic(1.0, 0.25)
        assert np.isclose(m.lame_mu, 0.4)
        assert np.isclose(m.lame_lambda, 0.4)

    def test_d_matrix_symmetric_positive_definite(self):
        d = IsotropicElastic(2.0, 0.3).elasticity_matrix()
        assert np.allclose(d, d.T)
        assert np.all(np.linalg.eigvalsh(d) > 0)

    def test_invalid_modulus(self):
        with pytest.raises(ValueError):
            IsotropicElastic(-1.0, 0.3)

    def test_invalid_poisson(self):
        with pytest.raises(ValueError):
            IsotropicElastic(1.0, 0.5)

    def test_uniaxial_stress_recovers_youngs_modulus(self):
        """D with sigma_yy = sigma_zz = 0 must give E in the xx relation."""
        d = IsotropicElastic(3.0, 0.3).elasticity_matrix()
        c = np.linalg.inv(d)  # compliance
        assert np.isclose(1.0 / c[0, 0], 3.0)


class TestShapeFunctions:
    def test_gradients_sum_to_zero(self):
        """Partition of unity: sum_n N_n = 1 so gradients sum to zero."""
        dn = shape_gradients_reference()
        assert np.allclose(dn.sum(axis=1), 0.0)

    def test_linear_field_reproduced(self):
        """Gradients must reproduce d(xi)/d(xi) = e_x exactly."""
        dn = shape_gradients_reference()
        from repro.fem.hex8 import _XI_NODES

        vals = _XI_NODES[:, 0]  # nodal values of the field f = xi
        grad = np.einsum("gnd,n->gd", dn, vals)
        assert np.allclose(grad, [1.0, 0.0, 0.0])


class TestHex8Stiffness:
    def test_symmetric(self):
        ke = hex8_stiffness(UNIT_CUBE, np.arange(8)[None, :], IsotropicElastic())
        assert np.allclose(ke[0], ke[0].T)

    def test_positive_semidefinite_with_six_rigid_modes(self):
        ke = hex8_stiffness(UNIT_CUBE, np.arange(8)[None, :], IsotropicElastic())[0]
        vals = np.linalg.eigvalsh(ke)
        assert np.all(vals > -1e-10)
        assert np.sum(np.abs(vals) < 1e-10) == 6  # 3 translations + 3 rotations

    def test_translation_in_kernel(self):
        ke = hex8_stiffness(UNIT_CUBE, np.arange(8)[None, :], IsotropicElastic())[0]
        for comp in range(3):
            u = np.zeros(24)
            u[comp::3] = 1.0
            assert np.allclose(ke @ u, 0.0, atol=1e-12)

    def test_rotation_in_kernel(self):
        ke = hex8_stiffness(UNIT_CUBE, np.arange(8)[None, :], IsotropicElastic())[0]
        # infinitesimal rotation about z: u = (-y, x, 0)
        u = np.zeros(24)
        u[0::3] = -UNIT_CUBE[:, 1]
        u[1::3] = UNIT_CUBE[:, 0]
        assert np.allclose(ke @ u, 0.0, atol=1e-10)

    def test_uniform_strain_patch(self):
        """Linear displacement field -> constant strain: energy must match
        the exact continuum value (hex8 integrates it exactly)."""
        mat = IsotropicElastic(1.0, 0.3)
        ke = hex8_stiffness(UNIT_CUBE, np.arange(8)[None, :], mat)[0]
        eps = 0.01
        u = np.zeros(24)
        u[0::3] = eps * UNIT_CUBE[:, 0]  # u_x = eps * x
        energy = 0.5 * u @ ke @ u
        d = mat.elasticity_matrix()
        exact = 0.5 * d[0, 0] * eps**2  # volume = 1
        assert np.isclose(energy, exact, rtol=1e-12)

    def test_scaling_with_element_size(self):
        """K scales linearly with element edge length in 3D elasticity."""
        k1 = hex8_stiffness(UNIT_CUBE, np.arange(8)[None, :], IsotropicElastic())[0]
        k2 = hex8_stiffness(2.0 * UNIT_CUBE, np.arange(8)[None, :], IsotropicElastic())[0]
        assert np.allclose(k2, 2.0 * k1)

    def test_inverted_element_rejected(self):
        bad = UNIT_CUBE.copy()
        bad[[0, 1]] = bad[[1, 0]]  # swap two corners -> negative Jacobian
        with pytest.raises(ValueError, match="Jacobian"):
            hex8_stiffness(bad, np.arange(8)[None, :], IsotropicElastic())

    def test_per_element_materials(self):
        hexes = np.vstack([np.arange(8), np.arange(8)])
        d1 = IsotropicElastic(1.0, 0.3).elasticity_matrix()
        d2 = IsotropicElastic(2.0, 0.3).elasticity_matrix()
        ke = hex8_stiffness(UNIT_CUBE, hexes, np.stack([d1, d2]))
        assert np.allclose(ke[1], 2.0 * ke[0])

    def test_bad_material_shape_rejected(self):
        with pytest.raises(ValueError, match="per-element"):
            hex8_stiffness(UNIT_CUBE, np.arange(8)[None, :], np.zeros((2, 6, 6)))

    def test_distorted_element_still_psd(self):
        rng = np.random.default_rng(0)
        coords = UNIT_CUBE + rng.uniform(-0.15, 0.15, size=(8, 3))
        ke = hex8_stiffness(coords, np.arange(8)[None, :], IsotropicElastic())[0]
        assert np.all(np.linalg.eigvalsh(ke) > -1e-10)
