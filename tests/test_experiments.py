"""Integration: every experiment harness runs and its paper claims hold.

These use tiny scales so the whole file stays fast; the benchmarks run
the same harnesses at the reporting scale.
"""

import pytest

from repro.experiments import ReproTable
from repro.experiments import (
    ablation_twolevel,
    smooth_convergence,
    fig02_penalty_tradeoff,
    fig05_work_ratio,
    fig07_cebe_tradeoff,
    fig15_storage_formats,
    fig16_19_weak_scaling,
    fig20_latency_fractions,
    fig26_27_single_node,
    fig28_29_selective_details,
    fig30_32_multi_node,
    table01_localized_ic0,
    table02_precond_comparison,
    table03_partitioning,
    table04_fig09_scaling,
    tableA_eigen,
)


def assert_claims(table: ReproTable):
    assert table.rows, f"{table.title}: no rows produced"
    assert table.all_claims_hold, f"{table.title}: failed {table.failed_claims()}"


class TestReproTable:
    def test_row_length_validation(self):
        t = ReproTable("t", "p", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_render_contains_claims(self):
        t = ReproTable("t", "p", ["a"])
        t.add_row(1)
        t.claim("always", True)
        out = t.render()
        assert "PASS" in out and "t" in out


class TestExperimentClaims:
    def test_fig02(self):
        assert_claims(fig02_penalty_tradeoff.run(scale=0.4, lambdas=(1e1, 1e3, 1e5)))

    def test_table01(self):
        assert_claims(table01_localized_ic0.run(n=8, pe_counts=(1, 2, 4, 8)))

    def test_fig05(self):
        assert_claims(fig05_work_ratio.run())

    def test_table02(self):
        assert_claims(table02_precond_comparison.run(scale=0.5))

    def test_table03(self):
        assert_claims(table03_partitioning.run(scale=0.5, ndomains=4, include_fill=False))

    def test_table04_fig09(self):
        assert_claims(table04_fig09_scaling.run(scale=0.5, pe_counts=(2, 4), include_fill=True))

    def test_fig07(self):
        assert_claims(fig07_cebe_tradeoff.run(scale=0.5, cluster_sizes=(1, 4, 8)))

    def test_fig15(self):
        assert_claims(fig15_storage_formats.run(sizes=(16, 64, 128)))

    def test_fig16_18_gflops(self):
        assert_claims(fig16_19_weak_scaling.run_gflops(node_counts=(1, 10, 160), per_node=(64, 256)))

    def test_fig19_iterations(self):
        assert_claims(fig16_19_weak_scaling.run_iterations(n=8, node_counts=(1, 2, 4)))

    def test_fig20(self):
        assert_claims(fig20_latency_fractions.run())

    def test_fig26_block(self):
        assert_claims(fig26_27_single_node.run("block", scale=0.5, colors=(2, 10, 30)))

    def test_fig27_swjapan(self):
        assert_claims(fig26_27_single_node.run("swjapan", scale=0.6, colors=(2, 10, 30)))

    def test_fig28_blocksort(self):
        assert_claims(fig28_29_selective_details.run_blocksort("block", scale=0.6))

    def test_fig29_imbalance(self):
        assert_claims(fig28_29_selective_details.run_imbalance("block", scale=0.6))

    def test_fig30_ten_nodes(self):
        assert_claims(fig30_32_multi_node.run_ten_nodes("block", scale=0.5, colors=(2, 20), nodes=2))

    def test_fig32_speedup(self):
        assert_claims(
            fig30_32_multi_node.run_speedup("block", scale=0.5, color_cases=(5, 20), node_counts=(1, 2, 4))
        )

    def test_tableA_block(self):
        assert_claims(tableA_eigen.run("block", scale=0.35, lambdas=(1e2, 1e8), include_fill=False))

    def test_smooth_convergence(self):
        assert_claims(smooth_convergence.run(scale=0.5))

    def test_ablation_twolevel(self):
        assert_claims(ablation_twolevel.run(scale=0.5, domain_counts=(2, 8)))

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            fig26_27_single_node.run("mars")
