"""Fig. 20: compute / latency / bandwidth fractions to 5120 PEs."""

from repro.experiments import fig20_latency_fractions


def test_fig20_latency_fractions(run_experiment):
    run_experiment(fig20_latency_fractions.run)
