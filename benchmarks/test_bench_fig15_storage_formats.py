"""Fig. 15: PDJDS vs PDCRS vs CRS storage on one ES node."""

from repro.experiments import fig15_storage_formats


def test_fig15_storage_formats(run_experiment):
    run_experiment(fig15_storage_formats.run)
