"""Figs. 26/27: SB-BIC(0) color sweep on one SMP node."""

from repro.experiments import fig26_27_single_node


def test_fig26_simple_block(run_experiment):
    run_experiment(fig26_27_single_node.run, model="block", scale=0.9, colors=(2, 5, 10, 20, 40))


def test_fig27_southwest_japan(run_experiment):
    run_experiment(fig26_27_single_node.run, model="swjapan", scale=0.9, colors=(2, 5, 10, 20, 40))
