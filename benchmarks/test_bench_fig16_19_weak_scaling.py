"""Figs. 16-19: weak scaling, hybrid vs flat MPI."""

from repro.experiments import fig16_19_weak_scaling


def test_fig16_18_gflops(run_experiment):
    run_experiment(fig16_19_weak_scaling.run_gflops)


def test_fig19_iterations(run_experiment):
    run_experiment(fig16_19_weak_scaling.run_iterations, n=10, node_counts=(1, 2, 4, 8))
