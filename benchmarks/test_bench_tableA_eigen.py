"""Appendix A: spectra of M^-1 A across the penalty sweep."""

from repro.experiments import tableA_eigen


def test_tableA12_simple_block(run_experiment):
    run_experiment(tableA_eigen.run, model="block", scale=0.5)


def test_tableA34_southwest_japan(run_experiment):
    run_experiment(tableA_eigen.run, model="swjapan", scale=0.5)
