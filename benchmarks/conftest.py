"""Benchmark harness configuration.

Each benchmark runs one experiment harness exactly once (they are
full solver campaigns, not microkernels), prints the reproduction table
next to the paper's reference values, and asserts the qualitative
claims.  Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.experiments.common import ReproTable


def pytest_collection_modifyitems(config, items):
    """Everything under benchmarks/ belongs to the slow `bench` tier, so
    the fast test gate can deselect it with ``-m "not bench"``."""
    for item in items:
        item.add_marker(pytest.mark.bench)


@pytest.fixture
def run_experiment(benchmark):
    """Benchmark an experiment once and verify its claims."""

    def _run(fn, /, **kwargs) -> ReproTable:
        table = benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1)
        print()
        table.print()
        assert table.all_claims_hold, f"failed claims: {table.failed_claims()}"
        return table

    return _run
