"""Checkpoint overhead gate: in-memory CG snapshots must cost <= 5%.

The acceptance criterion of the checkpoint layer: running
:func:`parallel_cg` with the default checkpoint interval on the kernel
benchmark model may not add more than 5% wall clock over the
checkpoint-free solve.  Timed as best-of-N (min over repeats of the
solver-reported solve time) so scheduler noise does not flake the gate.
"""

import pytest

from repro.fem.generators import simple_block_model
from repro.fem.model import build_contact_problem
from repro.parallel import DistributedSystem, parallel_cg, partition_nodes_rcb
from repro.precond import bic
from repro.resilience.checkpoint import DEFAULT_CHECKPOINT_INTERVAL

REPEATS = 5
MAX_OVERHEAD = 1.05


@pytest.fixture(scope="module")
def problem():
    return build_contact_problem(simple_block_model(6, 6, 4, 6, 6), penalty=1e6)


def _best_solve_seconds(problem, interval):
    part = partition_nodes_rcb(problem.mesh.coords, 4)
    best = float("inf")
    iters = None
    for _ in range(REPEATS):
        system = DistributedSystem.from_global(
            problem.a, problem.b, part, lambda sub, nodes: bic(sub, fill_level=0)
        )
        res = parallel_cg(system, checkpoint_interval=interval)
        assert res.converged
        if iters is None:
            iters = res.iterations
        else:
            assert res.iterations == iters  # same trajectory either way
        best = min(best, res.solve_seconds)
    return best


def test_bench_checkpoint_overhead_within_5_percent(problem):
    base = _best_solve_seconds(problem, 0)
    ckpt = _best_solve_seconds(problem, DEFAULT_CHECKPOINT_INTERVAL)
    ratio = ckpt / base
    print(
        f"\ncheckpoint overhead: base {base:.4f}s, "
        f"interval={DEFAULT_CHECKPOINT_INTERVAL} {ckpt:.4f}s, ratio {ratio:.3f}"
    )
    assert ratio <= MAX_OVERHEAD, (
        f"checkpointing at interval {DEFAULT_CHECKPOINT_INTERVAL} costs "
        f"{(ratio - 1) * 100:.1f}% (> {(MAX_OVERHEAD - 1) * 100:.0f}% budget)"
    )
