"""Fig. 5: work ratio for fixed per-PE problem sizes (SR2201 model)."""

from repro.experiments import fig05_work_ratio


def test_fig05_work_ratio(run_experiment):
    run_experiment(fig05_work_ratio.run)
