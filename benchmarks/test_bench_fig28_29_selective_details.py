"""Figs. 28/29: block-size sorting effect; imbalance and dummy padding."""

from repro.experiments import fig28_29_selective_details


def test_fig28_blocksort_block(run_experiment):
    run_experiment(fig28_29_selective_details.run_blocksort, model="block", scale=0.9)


def test_fig28_blocksort_swjapan(run_experiment):
    run_experiment(fig28_29_selective_details.run_blocksort, model="swjapan", scale=0.9)


def test_fig29_imbalance_dummy(run_experiment):
    run_experiment(fig28_29_selective_details.run_imbalance, model="block", scale=0.9)
