"""Table 1: localized IC(0) iteration growth and SR2201 speed-up."""

from repro.experiments import table01_localized_ic0


def test_table01_localized_ic0(run_experiment):
    run_experiment(table01_localized_ic0.run, n=12, pe_counts=(1, 2, 4, 8, 16, 32))
