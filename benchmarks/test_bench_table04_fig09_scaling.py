"""Table 4 / Fig. 9: preconditioner scaling across PE counts."""

from repro.experiments import table04_fig09_scaling


def test_table04_fig09_scaling(run_experiment):
    run_experiment(table04_fig09_scaling.run, scale=0.8, pe_counts=(2, 4, 8, 16))
