"""Acceptance gates for the solver service (multi-RHS block CG + caching).

The throughput story of ``repro.serve``: 8 right-hand sides sharing one
SB-BIC(0) operator must solve **at least 2x faster** through one block-CG
call than through a loop of single-RHS CG solves, while matching the
per-column answers to ``1e-10`` relative error; a warm repeat request
through :class:`~repro.serve.SolverSession` must skip every setup phase
and answer **at least 3x faster** than the cold first request; and 4
independent fingerprint groups through a 4-worker thread
:class:`~repro.serve.WorkerPool` must run **at least 2x faster** than the
serial batch path on a machine with >= 4 cores (below that the threads
time-slice one core, so the gate drops to a 0.75x overhead floor) while
staying bit-identical to the serial answers.

Penalty is 1e4 here, not the paper's 1e6: the parity gate compares two
*different* Krylov iterations at ``eps = 1e-13``, and the spread of the
penalty-row eigenvalues sets how far the two converged answers may
drift apart (1e6 lands near 2e-10 — above the gate; 1e4 near 2.5e-12).

``scripts/bench_serve_dump.py`` records the same measurements in
``BENCH_serve.json`` with the same floors.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro import kernels
from repro.experiments.workloads import block_structure
from repro.precond import sb_bic0
from repro.serve import SolveRequest, SolverSession, WorkerPool
from repro.solvers.block_cg import block_cg_solve
from repro.solvers.cg import cg_solve

SCALE = 1.0
PENALTY = 1.0e4
N_RHS = 8
EPS = 1e-13
POOL_PRECONDS = ("sbbic0", "bic0", "bic1", "ic0")


def best_of(fn, *, reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


@pytest.fixture(scope="module")
def warmed():
    kernels.warmup()


@pytest.fixture(scope="module")
def operator(warmed):
    """One structure, one materialized A(penalty), one SB-BIC(0) factor."""
    s = block_structure(SCALE)
    a = s.system(PENALTY)
    m = sb_bic0(a, s.groups)
    return s, a, m


@pytest.fixture(scope="module")
def rhs_block(operator):
    s, _, _ = operator
    return np.random.default_rng(2003).standard_normal((s.ndof, N_RHS))


@pytest.fixture(scope="module")
def sequential_solves(operator, rhs_block):
    _, a, m = operator
    return [
        cg_solve(a, rhs_block[:, j], m, eps=EPS, record_history=False)
        for j in range(N_RHS)
    ]


def test_block_cg_matches_sequential_cg(operator, rhs_block, sequential_solves):
    """Per-column parity <= 1e-10 relative — the coalescing correctness gate."""
    _, a, m = operator
    res = block_cg_solve(a, rhs_block, m, eps=EPS, record_history=False)
    assert all(res.converged_columns)
    assert all(r.converged for r in sequential_solves)
    rel_errs = [
        float(np.linalg.norm(res.x[:, j] - sequential_solves[j].x)
              / np.linalg.norm(sequential_solves[j].x))
        for j in range(N_RHS)
    ]
    assert max(rel_errs) <= 1e-10, (
        f"block-CG drifted from per-column CG: max rel err {max(rel_errs):.2e}"
    )


def test_block_cg_throughput_vs_sequential(operator, rhs_block):
    """8 coalesced RHS must beat 8 sequential solves by >= 2x wall time."""
    _, a, m = operator

    def sequential():
        for j in range(N_RHS):
            cg_solve(a, rhs_block[:, j], m, eps=EPS, record_history=False)

    def blocked():
        block_cg_solve(a, rhs_block, m, eps=EPS, record_history=False)

    sequential()  # warm both paths outside the timers
    blocked()
    seq_s = best_of(sequential, reps=3)
    blk_s = best_of(blocked, reps=3)
    assert seq_s / blk_s >= 2.0, (
        f"block CG {blk_s * 1e3:.0f} ms vs sequential {seq_s * 1e3:.0f} ms "
        f"= {seq_s / blk_s:.2f}x, below the 2x floor"
    )


def test_bench_block_cg_solve(benchmark, operator, rhs_block):
    """pytest-benchmark statistics for the blocked solve itself."""
    _, a, m = operator
    benchmark.pedantic(
        lambda: block_cg_solve(a, rhs_block, m, eps=EPS, record_history=False),
        rounds=3, iterations=1,
    )


def test_warm_request_skips_setup_and_beats_cold_3x(warmed):
    """SolverSession: warm repeat = 0 setup phases and >= 3x lower latency."""
    req = SolveRequest(job_id="gate", model="block", scale=SCALE,
                       penalty=PENALTY, precond="sbbic0", rhs="model")
    cold_s = float("inf")
    session = None
    for _ in range(2):
        session = SolverSession(warm_kernels=False)
        t0 = time.perf_counter()
        resp = session.solve(req)
        cold_s = min(cold_s, time.perf_counter() - t0)
        assert resp.ok and resp.converged
    warm_s = float("inf")
    for _ in range(5):
        t0 = time.perf_counter()
        resp = session.solve(req)
        warm_s = min(warm_s, time.perf_counter() - t0)
        assert resp.cache == {"structure": "hit", "factor": "hit"}
        assert resp.setups["symbolic"] == 0 and resp.setups["numeric"] == 0
    assert cold_s / warm_s >= 3.0, (
        f"warm {warm_s * 1e3:.0f} ms vs cold {cold_s * 1e3:.0f} ms "
        f"= {cold_s / warm_s:.2f}x, below the 3x floor"
    )


def test_pooled_groups_throughput_and_identity(warmed):
    """4 independent factor groups through WorkerPool(4) vs serial.

    Distinct preconds give distinct factor fingerprints, so the pool can
    overlap all four groups.  Gate: >= 2x on >= 4 cores; on smaller
    machines the pool cannot win (GIL time-slicing), so the gate becomes
    a 0.75x floor on dispatch/merge overhead.  Bit-identity to the
    serial path is gated unconditionally.
    """
    def batch():
        return [
            SolveRequest(job_id=f"pool-{p}", model="block", scale=SCALE,
                         penalty=PENALTY, precond=p, rhs="model", eps=EPS)
            for p in POOL_PRECONDS
        ]

    session = SolverSession(warm_kernels=False)
    serial_ref = session.solve_batch(batch())  # warm every factor group
    assert all(r.ok and r.converged for r in serial_ref)

    pool = WorkerPool(session, workers=len(POOL_PRECONDS), mode="thread")
    try:
        pooled_ref = pool.solve_batch(batch())
        for ser, par in zip(serial_ref, pooled_ref):
            assert par.ok and par.converged
            assert ser.x_sha256 == par.x_sha256, (
                f"pooled answer diverged from serial for {ser.job_id}"
            )
        serial_s = best_of(lambda: session.solve_batch(batch()), reps=3)
        pooled_s = best_of(lambda: pool.solve_batch(batch()), reps=3)
    finally:
        pool.close()

    cores = os.cpu_count() or 1
    floor = 2.0 if cores >= 4 else 0.75
    assert serial_s / pooled_s >= floor, (
        f"pooled {pooled_s * 1e3:.0f} ms vs serial {serial_s * 1e3:.0f} ms "
        f"= {serial_s / pooled_s:.2f}x, below the {floor:g}x floor "
        f"({cores} cores)"
    )
