"""Fig. 2: penalty vs NR-cycles / linear-iterations trade-off."""

from repro.experiments import fig02_penalty_tradeoff


def test_fig02_penalty_tradeoff(run_experiment):
    run_experiment(fig02_penalty_tradeoff.run, scale=0.6)
