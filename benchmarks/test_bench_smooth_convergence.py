"""Smooth-convergence profile of SB-BIC(0) vs BIC(0)."""

from repro.experiments import smooth_convergence


def test_smooth_convergence(run_experiment):
    run_experiment(smooth_convergence.run, scale=0.9)
