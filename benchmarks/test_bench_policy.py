"""Acceptance gates for the policy layer's mixed-sweep benchmark.

``scripts/bench_policy_dump.py`` solves a generators x penalties sweep
(block contact, southwest Japan fault, homogeneous box) through four
fixed escalation ladders and two passes of the learned policy, then
writes ``BENCH_policy.json``.  The gates mirror the script's own:

- learned-policy pass 2 <= 1.0x the best *fixed* ladder's total,
- learned-policy pass 2 strictly < the *default* static ladder's total,
- pass 2 (warm probe cache + richer history) <= pass 1 (cold probes).

These only hold because per-case winners differ across the sweep — the
box generator has no contact groups, so the paper's SB-BIC-first default
order wastes two block factorizations there — which is the existence
proof for choosing the ladder per problem instead of statically.

The trajectory-file convention (capped first-2 + last-8, same-tree
refresh, dropped-entry counter) is gated separately on synthetic
entries, without re-running the sweep.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_dump_module():
    spec = importlib.util.spec_from_file_location(
        "bench_policy_dump", REPO_ROOT / "scripts" / "bench_policy_dump.py"
    )
    mod = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("bench_policy_dump", mod)
    spec.loader.exec_module(mod)
    return mod


@pytest.fixture(scope="module")
def dump_module():
    return _load_dump_module()


@pytest.fixture(scope="module")
def sweep(dump_module, tmp_path_factory):
    """One quick-mode sweep; its exit code and the JSON it wrote."""
    out = tmp_path_factory.mktemp("bench_policy") / "BENCH_policy.json"
    # --no-gate so the fixture always yields the doc; gates re-asserted below
    rc = dump_module.main(["--quick", "--out", str(out), "--no-gate"])
    return rc, json.loads(out.read_text())


def test_sweep_runs_clean(sweep):
    rc, doc = sweep
    assert rc == 0
    assert len(doc["trajectory"]) == 1
    entry = doc["trajectory"][0]
    assert entry["quick"] is True
    assert len(entry["cases"]) == 9  # 3 generators x 3 penalties
    for case in entry["cases"]:
        for arm, row in case["arms"].items():
            assert row["converged"], f"{case['name']} arm {arm} did not converge"


def test_policy_beats_best_fixed_ladder(sweep):
    """ISSUE gate: pass 2 <= 1.0x the best fixed ladder on the mixed sweep."""
    _, doc = sweep
    entry = doc["trajectory"][0]
    best_fixed = min(entry["fixed_totals_s"].values())
    assert entry["policy_pass2_s"] <= best_fixed, (
        f"policy pass 2 {entry['policy_pass2_s'] * 1e3:.0f} ms vs best fixed "
        f"{best_fixed * 1e3:.0f} ms"
    )
    assert entry["gates"]["policy_vs_best_fixed"]["ok"]


def test_policy_strictly_beats_default_ladder(sweep):
    _, doc = sweep
    entry = doc["trajectory"][0]
    default_total = entry["fixed_totals_s"]["default"]
    assert entry["policy_pass2_s"] < default_total, (
        f"policy pass 2 {entry['policy_pass2_s'] * 1e3:.0f} ms not below the "
        f"default static ladder's {default_total * 1e3:.0f} ms"
    )
    assert entry["gates"]["policy_vs_default"]["ok"]


def test_warm_pass_not_slower_than_cold(sweep):
    """Second pass over the same traffic (cached probes) <= the first."""
    _, doc = sweep
    entry = doc["trajectory"][0]
    assert entry["policy_pass2_s"] <= entry["policy_pass1_s"], (
        f"warm pass {entry['policy_pass2_s'] * 1e3:.0f} ms slower than cold "
        f"{entry['policy_pass1_s'] * 1e3:.0f} ms"
    )
    assert entry["gates"]["warm_vs_cold"]["ok"]


def test_sweep_winners_actually_differ(sweep):
    """The mixed sweep must not be winnable by one fixed family — otherwise
    the policy gates above are vacuous."""
    _, doc = sweep
    entry = doc["trajectory"][0]
    winners = set()
    for case in entry["cases"]:
        fixed = {a: r["wall_s"] for a, r in case["arms"].items()
                 if a not in ("pass1", "pass2")}
        winners.add(min(fixed, key=fixed.get))
    assert len(winners) >= 2, f"single fixed winner {winners} across the sweep"


def test_trajectory_cap_and_same_tree_refresh(dump_module, tmp_path, monkeypatch):
    """Capped-trajectory convention: first-2 + last-8 kept, drops counted,
    and a re-run on the same git tree replaces the last entry in place."""
    monkeypatch.setattr(dump_module, "_git_tree", lambda: "tree-A")
    path = tmp_path / "traj.json"
    for i in range(12):
        monkeypatch.setattr(dump_module, "_git_tree", lambda i=i: f"tree-{i}")
        appended = dump_module.append_trajectory(path, {"run": i, "quick": False})
        assert appended
    doc = json.loads(path.read_text())
    assert len(doc["trajectory"]) == 10
    assert [e["run"] for e in doc["trajectory"][:2]] == [0, 1]
    assert doc["trajectory"][-1]["run"] == 11
    assert doc["meta"]["dropped_entries"] == 2

    # same tree + same mode refreshes in place instead of appending
    monkeypatch.setattr(dump_module, "_git_tree", lambda: "tree-11")
    assert not dump_module.append_trajectory(path, {"run": 99, "quick": False})
    doc = json.loads(path.read_text())
    assert len(doc["trajectory"]) == 10
    assert doc["trajectory"][-1]["run"] == 99
    # ... but a different mode (quick vs full) appends a fresh entry
    assert dump_module.append_trajectory(path, {"run": 100, "quick": True})
