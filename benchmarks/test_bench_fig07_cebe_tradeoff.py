"""Fig. 7: CEBE cluster-size trade-off."""

from repro.experiments import fig07_cebe_tradeoff


def test_fig07_cebe_tradeoff(run_experiment):
    run_experiment(fig07_cebe_tradeoff.run, scale=0.8, cluster_sizes=(1, 2, 4, 8, 16))
