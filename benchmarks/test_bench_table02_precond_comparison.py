"""Table 2: the headline preconditioner comparison (single PE)."""

from repro.experiments import table02_precond_comparison


def test_table02_precond_comparison(run_experiment):
    run_experiment(table02_precond_comparison.run, scale=0.9)
