"""Ablation: two-level coarse correction vs pure localization."""

from repro.experiments import ablation_twolevel


def test_ablation_twolevel(run_experiment):
    run_experiment(ablation_twolevel.run, scale=0.8, domain_counts=(2, 4, 8, 16))
