"""Table 3: ORIGINAL vs IMPROVED (contact-aware) partitioning."""

from repro.experiments import table03_partitioning


def test_table03_partitioning(run_experiment):
    run_experiment(table03_partitioning.run, scale=0.8, ndomains=8)
