"""Figs. 30-32: multi-node color sweep and speed-up study."""

from repro.experiments import fig30_32_multi_node


def test_fig30_ten_node_color_sweep(run_experiment):
    run_experiment(fig30_32_multi_node.run_ten_nodes, model="block", scale=0.8, colors=(2, 10, 40), nodes=4)


def test_fig31_swjapan_color_sweep(run_experiment):
    run_experiment(fig30_32_multi_node.run_ten_nodes, model="swjapan", scale=0.8, colors=(2, 10, 40), nodes=4)


def test_fig32_speedup_13_vs_30_colors(run_experiment):
    run_experiment(fig30_32_multi_node.run_speedup, model="block", scale=0.8, color_cases=(13, 30), node_counts=(1, 2, 4, 8))
