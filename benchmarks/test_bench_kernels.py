"""Microbenchmarks of the solver's hot kernels (pytest-benchmark proper).

Unlike the experiment benchmarks (full solver campaigns, run once),
these measure the repeated inner kernels with real statistics: the BSR
matvec, the color-wise batched preconditioner application, the
factorization set-up, and the full CG solve.

Kernels dispatch through :mod:`repro.kernels`, so the ``warmed`` fixture
pays JIT compilation (and lazy structure builds) once per module *before*
any timed round — first-call compile time must never skew a statistic.
The per-backend benches and the numba speedup gate skip cleanly when
numba is not importable.
"""

import numpy as np
import pytest

from repro import kernels
from repro.fem.generators import simple_block_model
from repro.fem.model import build_contact_problem
from repro.precond import bic, sb_bic0
from repro.solvers.cg import cg_solve

HAVE_NUMBA = "numba" in kernels.available_backends()


@pytest.fixture(scope="module")
def problem():
    return build_contact_problem(simple_block_model(6, 6, 4, 6, 6), penalty=1e6)


@pytest.fixture(scope="module")
def sb_precond(problem, warmed):
    return sb_bic0(problem.a, problem.groups).warmup()


@pytest.fixture(scope="module")
def warmed():
    """JIT-compile the active backend's kernels before anything is timed."""
    kernels.warmup()


@pytest.fixture()
def use_backend():
    """Pin a backend for one bench, warmed, restoring auto afterwards."""

    def pin(name: str) -> None:
        kernels.set_backend(name)
        kernels.warmup()

    yield pin
    kernels.set_backend(None)


def test_bench_bsr_matvec(benchmark, problem, warmed):
    x = np.random.default_rng(0).normal(size=problem.ndof)
    problem.a_bcsr.matvec(x)  # exclude the BSR-cache / JIT first call
    benchmark(problem.a_bcsr.matvec, x)


def test_bench_csr_matvec(benchmark, problem, warmed):
    a_csr = problem.a.tocsr()
    x = np.random.default_rng(0).normal(size=problem.ndof)
    backend = kernels.get_backend()
    benchmark(backend.csr_matvec, a_csr, x)


def test_bench_sbbic_apply(benchmark, problem, sb_precond):
    r = np.random.default_rng(1).normal(size=problem.ndof)
    benchmark(sb_precond.apply, r)


@pytest.mark.parametrize(
    "backend_name",
    [
        "numpy",
        pytest.param(
            "numba",
            marks=pytest.mark.skipif(not HAVE_NUMBA, reason="numba not importable"),
        ),
    ],
)
def test_bench_sbbic_apply_backend(benchmark, problem, sb_precond, use_backend, backend_name):
    """Same apply, pinned per backend — the cross-backend comparison rows."""
    use_backend(backend_name)
    r = np.random.default_rng(1).normal(size=problem.ndof)
    sb_precond.apply(r)  # first dispatch on this backend, outside the timer
    benchmark(sb_precond.apply, r)


def test_bench_sbbic_reference_apply(benchmark, problem, sb_precond):
    """The pre-compilation bucketed path, kept as the speedup baseline."""
    r = np.random.default_rng(1).normal(size=problem.ndof)
    sb_precond.reference_apply(r)  # build the lazy bucket structures
    benchmark(sb_precond.reference_apply, r)


def test_bench_bic0_apply(benchmark, problem):
    m = bic(problem.a, fill_level=0)
    r = np.random.default_rng(2).normal(size=problem.ndof)
    benchmark(m.apply, r)


def test_bench_sbbic_setup(benchmark, problem):
    benchmark.pedantic(
        lambda: sb_bic0(problem.a, problem.groups), rounds=3, iterations=1
    )


def test_bench_sbbic_refactor(benchmark, problem, sb_precond):
    """Numeric-only re-factorization on the cached symbolic pattern."""
    benchmark.pedantic(
        lambda: sb_precond.refactor(problem.a), rounds=5, iterations=1
    )


def test_refactor_speedup_vs_cold_setup(problem):
    """refactor must stay >= 2x faster than a cold SB-BIC(0) setup.

    The acceptance floor of the symbolic/numeric split: a numeric-only
    re-setup skips ordering, fill-pattern enumeration, scheduling and
    operator-structure compilation, so it must beat the cold path by a
    wide margin on the standard bench model.
    """
    import time

    cold = float("inf")
    m = None
    for _ in range(3):
        t0 = time.perf_counter()
        m = sb_bic0(problem.a, problem.groups)
        cold = min(cold, time.perf_counter() - t0)
    warm = float("inf")
    for _ in range(5):
        t0 = time.perf_counter()
        m.refactor(problem.a)
        warm = min(warm, time.perf_counter() - t0)
    assert cold / warm >= 2.0, (
        f"refactor {warm * 1e3:.2f} ms vs cold setup {cold * 1e3:.2f} ms "
        f"= {cold / warm:.2f}x, below the 2x floor"
    )


@pytest.mark.skipif(not HAVE_NUMBA, reason="numba not importable")
def test_numba_apply_speedup_vs_numpy(problem, sb_precond, use_backend):
    """numba ``sbbic_apply`` must stay >= 3x faster than numpy.

    The acceptance floor of the JIT kernel layer (ISSUE 6): a warmed
    ``@njit(parallel=True)`` sweep over independent color groups against
    the compiled-CSR numpy path, best-of timing on the standard bench
    model.  The floor presumes real parallelism, so the gate softens to
    1x (parity, never a slowdown) on boxes with < 4 cores.
    """
    import os
    import time

    r = np.random.default_rng(1).normal(size=problem.ndof)

    def best_of(fn, reps=50):
        best = float("inf")
        for _ in range(reps):
            t0 = time.perf_counter()
            fn(r)
            best = min(best, time.perf_counter() - t0)
        return best

    use_backend("numpy")
    numpy_s = best_of(sb_precond.apply)
    use_backend("numba")
    sb_precond.apply(r)  # first dispatch: flat-plan build + any compile
    numba_s = best_of(sb_precond.apply)

    floor = 3.0 if (os.cpu_count() or 1) >= 4 else 1.0
    speedup = numpy_s / numba_s
    assert speedup >= floor, (
        f"numba apply {numba_s * 1e3:.3f} ms vs numpy {numpy_s * 1e3:.3f} ms "
        f"= {speedup:.2f}x, below the {floor}x floor"
    )


def test_bench_bic1_setup(benchmark, problem):
    benchmark.pedantic(
        lambda: bic(problem.a, fill_level=1), rounds=2, iterations=1
    )


def test_bench_full_sbbic_solve(benchmark, problem, sb_precond):
    result = benchmark.pedantic(
        lambda: cg_solve(problem.a, problem.b, sb_precond),
        rounds=2,
        iterations=1,
    )
    assert result.converged
