"""Microbenchmarks of the solver's hot kernels (pytest-benchmark proper).

Unlike the experiment benchmarks (full solver campaigns, run once),
these measure the repeated inner kernels with real statistics: the BSR
matvec, the color-wise batched preconditioner application, the
factorization set-up, and the full CG solve.
"""

import numpy as np
import pytest

from repro.fem.generators import simple_block_model
from repro.fem.model import build_contact_problem
from repro.precond import bic, sb_bic0
from repro.solvers.cg import cg_solve


@pytest.fixture(scope="module")
def problem():
    return build_contact_problem(simple_block_model(6, 6, 4, 6, 6), penalty=1e6)


@pytest.fixture(scope="module")
def sb_precond(problem):
    return sb_bic0(problem.a, problem.groups)


def test_bench_bsr_matvec(benchmark, problem):
    bsr = problem.a_bcsr.to_bsr()
    x = np.random.default_rng(0).normal(size=problem.ndof)
    benchmark(lambda: bsr @ x)


def test_bench_csr_matvec(benchmark, problem):
    x = np.random.default_rng(0).normal(size=problem.ndof)
    benchmark(lambda: problem.a @ x)


def test_bench_sbbic_apply(benchmark, problem, sb_precond):
    r = np.random.default_rng(1).normal(size=problem.ndof)
    benchmark(sb_precond.apply, r)


def test_bench_sbbic_reference_apply(benchmark, problem, sb_precond):
    """The pre-compilation bucketed path, kept as the speedup baseline."""
    r = np.random.default_rng(1).normal(size=problem.ndof)
    sb_precond.reference_apply(r)  # build the lazy bucket structures
    benchmark(sb_precond.reference_apply, r)


def test_bench_bic0_apply(benchmark, problem):
    m = bic(problem.a, fill_level=0)
    r = np.random.default_rng(2).normal(size=problem.ndof)
    benchmark(m.apply, r)


def test_bench_sbbic_setup(benchmark, problem):
    benchmark.pedantic(
        lambda: sb_bic0(problem.a, problem.groups), rounds=3, iterations=1
    )


def test_bench_sbbic_refactor(benchmark, problem, sb_precond):
    """Numeric-only re-factorization on the cached symbolic pattern."""
    benchmark.pedantic(
        lambda: sb_precond.refactor(problem.a), rounds=5, iterations=1
    )


def test_refactor_speedup_vs_cold_setup(problem):
    """refactor must stay >= 2x faster than a cold SB-BIC(0) setup.

    The acceptance floor of the symbolic/numeric split: a numeric-only
    re-setup skips ordering, fill-pattern enumeration, scheduling and
    operator-structure compilation, so it must beat the cold path by a
    wide margin on the standard bench model.
    """
    import time

    cold = float("inf")
    m = None
    for _ in range(3):
        t0 = time.perf_counter()
        m = sb_bic0(problem.a, problem.groups)
        cold = min(cold, time.perf_counter() - t0)
    warm = float("inf")
    for _ in range(5):
        t0 = time.perf_counter()
        m.refactor(problem.a)
        warm = min(warm, time.perf_counter() - t0)
    assert cold / warm >= 2.0, (
        f"refactor {warm * 1e3:.2f} ms vs cold setup {cold * 1e3:.2f} ms "
        f"= {cold / warm:.2f}x, below the 2x floor"
    )


def test_bench_bic1_setup(benchmark, problem):
    benchmark.pedantic(
        lambda: bic(problem.a, fill_level=1), rounds=2, iterations=1
    )


def test_bench_full_sbbic_solve(benchmark, problem, sb_precond):
    result = benchmark.pedantic(
        lambda: cg_solve(problem.a, problem.b, sb_precond),
        rounds=2,
        iterations=1,
    )
    assert result.converged
